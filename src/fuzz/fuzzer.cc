#include "fuzz/fuzzer.hh"

#include <algorithm>
#include <iostream>
#include <string>
#include <utility>

#include "nvme/defs.hh"
#include "sim/check.hh"

namespace bms::fuzz {

Fuzzer::Fuzzer(FuzzConfig cfg) : _cfg(cfg), _log(cfg.opLogCapacity)
{
    BMS_ASSERT(_cfg.maxTenants >= 1 && _cfg.maxTenants <= 16,
               "tenants ride on front-end functions (4 PFs + VFs; the "
               "fuzzer caps multi-VF runs at 16): ",
               _cfg.maxTenants);
    BMS_ASSERT(_cfg.maxSsds >= 1 && _cfg.maxSsds <= 4,
               "back end has 4 SSD slots: ", _cfg.maxSsds);
    BMS_ASSERT(_cfg.minSsds >= 1 && _cfg.minSsds <= _cfg.maxSsds,
               "minSsds must be in [1, maxSsds]: ", _cfg.minSsds);
    BMS_ASSERT(_cfg.horizon >= sim::milliseconds(10),
               "horizon too short to schedule control ops");
    BMS_ASSERT(_cfg.maxRemoteNodes >= 0 && _cfg.maxRemoteNodes <= 4,
               "remote nodes must be in [0, 4]: ", _cfg.maxRemoteNodes);
    BMS_ASSERT(!_cfg.forceTiering || _cfg.maxRemoteNodes >= 1,
               "forceTiering needs maxRemoteNodes >= 1");
    if (_cfg.forceThin)
        _cfg.enableThin = true;
    BMS_ASSERT(!_cfg.enableThin || _cfg.maxRemoteNodes == 0,
               "thin/snapshot runs are local-only (snapshot refuses "
               "tier-spilled chunks; keep the streams separate)");
}

Fuzzer::~Fuzzer() = default;

void
Fuzzer::fail(const std::string &what)
{
    _log.dump(std::cerr);
    BMS_PANIC("fuzzer: ", what, " [seed=", _cfg.seed, "]");
}

void
Fuzzer::buildTenants(sim::Rng &rng, sim::Rng &thin_rng)
{
    sim::Simulator &sim = _bed->sim();
    std::uint64_t chunk_bytes =
        _bed->controller().namespaces().chunkBlocks() * nvme::kBlockSize;
    int tenants = 1 + static_cast<int>(
                          rng.uniformInt(0, _cfg.maxTenants - 1));
    for (int t = 0; t < tenants; ++t) {
        auto fn = static_cast<pcie::FunctionId>(t);
        // One or two 64 GiB chunks; two-chunk namespaces host their
        // verified window across the chunk boundary so every run with
        // them exercises the engine's extent-splitting path.
        int ns_chunks = rng.chance(0.5) ? 2 : 1;
        std::uint64_t ns_bytes = ns_chunks * chunk_bytes;
        // Thin tenants allocate chunks on first write; their draws
        // come only from the forked thin stream.
        bool thin = _cfg.enableThin &&
                    (_cfg.forceThin || thin_rng.chance(0.7));
        host::NvmeDriver &drv = _bed->attachTenant(
            fn, ns_bytes, core::NamespaceManager::Policy::RoundRobin,
            core::QosLimits(), nullptr, -1, thin);

        OracleDevice::Config ocfg;
        ocfg.uid = static_cast<std::uint32_t>(t + 1);
        ocfg.seed = _cfg.seed;
        ocfg.regionBytes = sim::mib(2 + rng.uniformInt(0, 6));
        if (ns_chunks >= 2) {
            ocfg.baseOffset = chunk_bytes - ocfg.regionBytes / 2;
        } else {
            std::uint64_t span_blocks =
                (ns_bytes - ocfg.regionBytes) / nvme::kBlockSize;
            ocfg.baseOffset =
                rng.uniformInt(0, span_blocks) * nvme::kBlockSize;
        }
        auto *oracle = sim.make<OracleDevice>(
            sim, "oracle" + std::to_string(t), drv,
            _bed->host().memory(), _log, ocfg);

        TenantSpec spec;
        spec.iodepth = 1 + static_cast<int>(rng.uniformInt(0, 15));
        spec.readRatio = rng.uniformDouble(0.2, 0.8);
        spec.flushProb = 0.005;
        spec.minIoBlocks = 1;
        spec.maxIoBlocks = 1u << rng.uniformInt(0, 5); // 4 KiB..128 KiB
        spec.sequential = rng.chance(0.3);
        if (thin)
            spec.trimProb = thin_rng.uniformDouble(0.02, 0.10);
        if (t == 0)
            _t0cfg = ocfg;
        auto *wl = sim.make<TenantWorkload>(
            sim, "tenant" + std::to_string(t), *oracle, rng.fork(), spec);
        _tenants.push_back(Tenant{fn, oracle, wl});
        wl->start();
    }
}

void
Fuzzer::scheduleControlOps(sim::Rng &rng)
{
    if (!_cfg.enableControlOps)
        return;
    sim::Simulator &sim = _bed->sim();
    core::MgmtConsole &console = _bed->console();
    core::Eid eid = _bed->controller().endpoint().eid();
    int pf_count = _bed->engine().config().pfCount;
    int n = 4 + static_cast<int>(rng.uniformInt(0, 6));
    for (int i = 0; i < n; ++i) {
        sim::Tick at =
            _start + static_cast<sim::Tick>(
                         rng.uniformDouble(0.05, 0.95) *
                         static_cast<double>(_cfg.horizon));
        int kind = static_cast<int>(rng.uniformInt(0, 4));
        auto tenant_ix = rng.uniformInt(0, _tenants.size() - 1);
        auto fn = _tenants[tenant_ix].fn;
        switch (kind) {
          case 0:
            ++_pendingControl;
            sim.scheduleAt(at, [this, &console, eid] {
                _log.record(_bed->sim().now(), "ctrl healthPoll");
                console.healthPoll(eid, [this](std::vector<core::SlotHealth>
                                                   health) {
                    BMS_ASSERT(!health.empty(), "health poll empty");
                    ++_controlOps;
                    --_pendingControl;
                });
            });
            break;
          case 1:
            ++_pendingControl;
            sim.scheduleAt(at, [this, &console, eid, fn] {
                _log.record(_bed->sim().now(),
                            "ctrl ioStats fn=" + std::to_string(fn));
                console.ioStats(
                    eid, static_cast<std::uint8_t>(fn),
                    [this](std::optional<core::MiIoStats> stats) {
                        BMS_ASSERT(stats.has_value(),
                                   "ioStats on live tenant failed");
                        ++_controlOps;
                        --_pendingControl;
                    });
            });
            break;
          case 2: {
            // Generous limits: exercises the QoS reprogramming path
            // mid-I/O without throttling tenants into the drain phase.
            core::QosLimits qos;
            qos.iopsLimit = 200'000.0 + 100'000.0 * rng.uniform01();
            ++_pendingControl;
            sim.scheduleAt(at, [this, &console, eid, fn, qos] {
                _log.record(_bed->sim().now(),
                            "ctrl setQos fn=" + std::to_string(fn));
                console.setQos(eid, static_cast<std::uint8_t>(fn), 1, qos,
                               [this](bool ok) {
                                   BMS_ASSERT(ok, "setQos failed");
                                   ++_controlOps;
                                   --_pendingControl;
                               });
            });
            break;
          }
          case 3: {
            // Scratch namespace life cycle on an idle VF: allocate a
            // chunk mid-I/O, destroy it a little later.
            auto vf = static_cast<std::uint8_t>(
                pf_count + rng.uniformInt(0, 3));
            std::uint64_t bytes =
                _bed->controller().namespaces().chunkBlocks() *
                nvme::kBlockSize;
            sim::Tick destroy_after =
                sim::milliseconds(1 + rng.uniformInt(0, 20));
            ++_pendingControl;
            sim.scheduleAt(at, [this, &console, eid, vf, bytes,
                                destroy_after] {
                _log.record(_bed->sim().now(),
                            "ctrl createNs vf=" + std::to_string(vf));
                console.createNamespace(
                    eid, vf, bytes, 0, core::QosLimits(),
                    [this, &console, eid, vf,
                     destroy_after](std::optional<std::uint32_t> nsid) {
                        ++_controlOps;
                        if (!nsid) {
                            // Legal under chunk exhaustion.
                            --_pendingControl;
                            return;
                        }
                        _bed->sim().scheduleAfter(
                            destroy_after,
                            [this, eid, vf, nsid = *nsid] {
                                _log.record(_bed->sim().now(),
                                            "ctrl destroyNs vf=" +
                                                std::to_string(vf));
                                destroyScratch(eid, vf, nsid, 0);
                            });
                    });
            });
            break;
          }
          default: {
            // Live resize: grow a tenant namespace by one chunk while
            // its I/O is in flight (local control-plane op).
            std::uint64_t extra =
                _bed->controller().namespaces().chunkBlocks() *
                nvme::kBlockSize;
            sim.scheduleAt(at, [this, fn, extra] {
                auto grown = _bed->controller().namespaces().grow(
                    fn, 1, extra);
                _log.record(_bed->sim().now(),
                            "ctrl grow fn=" + std::to_string(fn) +
                                (grown ? " ok" : " exhausted"));
                ++_controlOps;
            });
            break;
          }
        }
    }
}

void
Fuzzer::destroyScratch(core::Eid eid, std::uint8_t vf,
                       std::uint32_t nsid, int attempt)
{
    _bed->console().destroyNamespace(
        eid, vf, nsid, [this, eid, vf, nsid, attempt](bool ok) {
            if (ok) {
                ++_controlOps;
                --_pendingControl;
                return;
            }
            // A migration (usually an evacuation sweeping the scratch
            // chunk along) holds the namespace locked; destroy is
            // refused until the copy settles, so retry.
            if (attempt >= 200)
                fail("scratch namespace destroy kept failing");
            _bed->sim().scheduleAfter(
                sim::milliseconds(5), [this, eid, vf, nsid, attempt] {
                    destroyScratch(eid, vf, nsid, attempt + 1);
                });
        });
}

void
Fuzzer::scheduleMigrations(sim::Rng &rng)
{
    if (!_cfg.enableMigration || _bed->ssdCount() < 2)
        return;
    sim::Simulator &sim = _bed->sim();
    core::MgmtConsole &console = _bed->console();
    core::Eid eid = _bed->controller().endpoint().eid();
    int n = _cfg.forceMigration
                ? 3
                : static_cast<int>(rng.uniformInt(0, 3));
    sim::Tick first_at = 0;
    for (int i = 0; i < n; ++i) {
        sim::Tick at =
            _start + static_cast<sim::Tick>(
                         rng.uniformDouble(0.05, 0.6) *
                         static_cast<double>(_cfg.horizon));
        if (first_at == 0 || at < first_at)
            first_at = at;
        // Pinned seeds always get one migrate and one evacuate.
        int kind = _cfg.forceMigration && i < 2
                       ? i
                       : static_cast<int>(rng.uniformInt(0, 3));
        switch (kind) {
          case 0: {
            auto tenant_ix = rng.uniformInt(0, _tenants.size() - 1);
            auto fn = _tenants[tenant_ix].fn;
            auto chunk_ix =
                static_cast<std::uint32_t>(rng.uniformInt(0, 1));
            ++_pendingControl;
            sim.scheduleAt(at, [this, &console, eid, fn, chunk_ix] {
                _log.record(_bed->sim().now(),
                            "ctrl migrate fn=" + std::to_string(fn) +
                                " chunk=" + std::to_string(chunk_ix));
                // May fail legally: chunk index past the namespace
                // end, destination full, or copy faulted out.
                console.migrateChunk(
                    eid, static_cast<std::uint8_t>(fn), 1, chunk_ix,
                    0xFF, [this](core::MiMigrateResult) {
                        ++_controlOps;
                        --_pendingControl;
                    });
            });
            break;
          }
          case 1: {
            int slot = static_cast<int>(
                rng.uniformInt(0, _bed->ssdCount() - 1));
            ++_pendingControl;
            sim.scheduleAt(at, [this, &console, eid, slot] {
                _log.record(_bed->sim().now(),
                            "ctrl evacuate slot=" + std::to_string(slot));
                console.evacuate(
                    eid, static_cast<std::uint8_t>(slot),
                    [this](core::MiEvacuateResult) {
                        ++_controlOps;
                        --_pendingControl;
                    });
            });
            break;
          }
          case 2:
            ++_pendingControl;
            sim.scheduleAt(at, [this, &console, eid] {
                _log.record(_bed->sim().now(), "ctrl migrations");
                console.migrations(
                    eid, [this](std::vector<core::MiMigrationInfo>) {
                        ++_controlOps;
                        --_pendingControl;
                    });
            });
            break;
          default:
            ++_pendingControl;
            sim.scheduleAt(at, [this, &console, eid] {
                _log.record(_bed->sim().now(), "ctrl df");
                console.df(eid, [this](std::vector<core::MiDfEntry> df) {
                    int slots =
                        _bed->ssdCount() +
                        _bed->remoteNodes() * _bed->config().volumesPerNode;
                    BMS_ASSERT_EQ(df.size(),
                                  static_cast<std::size_t>(slots),
                                  "df must report every slot");
                    ++_controlOps;
                    --_pendingControl;
                });
            });
            break;
        }
    }
    // Pin a fault window over the first migration op, with error and
    // latency rates on EVERY slot so both the copy's source and its
    // destination legs see faults mid-flight.
    if (_cfg.enableFaults && n > 0) {
        sim::Tick t1 =
            first_at + static_cast<sim::Tick>(
                           rng.uniformDouble(0.1, 0.3) *
                           static_cast<double>(_cfg.horizon));
        std::vector<ssd::FaultConfig> rates(_bed->ssdCount());
        for (auto &r : rates) {
            r.readErrorRate = rng.uniformDouble(0.002, 0.03);
            r.writeErrorRate = rng.uniformDouble(0.002, 0.03);
            r.latencySpikeRate = rng.uniformDouble(0.005, 0.03);
        }
        sim.scheduleAt(first_at, [this, rates] {
            _log.record(_bed->sim().now(),
                        "fault window OPEN (migration)");
            ++_faultWindows;
            _faultsEverActive = true;
            for (int s = 0; s < _bed->ssdCount(); ++s)
                _bed->ssd(s).faults() = rates[static_cast<std::size_t>(s)];
            for (Tenant &t : _tenants)
                t.oracle->setFaultsActive(true);
        });
        sim.scheduleAt(t1, [this] {
            _log.record(_bed->sim().now(),
                        "fault window CLOSE (migration)");
            for (int s = 0; s < _bed->ssdCount(); ++s)
                _bed->ssd(s).faults() = ssd::FaultConfig{};
        });
    }
}

void
Fuzzer::scheduleUpgrades(sim::Rng &rng)
{
    if (!_cfg.enableHotUpgrade)
        return;
    if (!_cfg.forceUpgrade && !rng.chance(0.6))
        return;
    sim::Simulator &sim = _bed->sim();
    core::Eid eid = _bed->controller().endpoint().eid();
    int slot = _cfg.forceUpgrade
                   ? 0
                   : static_cast<int>(
                         rng.uniformInt(0, _bed->ssdCount() - 1));
    sim::Tick at =
        _cfg.forceUpgrade
            ? _start + _cfg.horizon / 4
            : _start + static_cast<sim::Tick>(
                           rng.uniformDouble(0.1, 0.5) *
                           static_cast<double>(_cfg.horizon));
    ++_pendingControl;
    sim.scheduleAt(at, [this, eid, slot] {
        _log.record(_bed->sim().now(),
                    "ctrl hotUpgrade slot=" + std::to_string(slot));
        _bed->console().firmwareUpgrade(
            eid, static_cast<std::uint8_t>(slot), 1u << 20,
            [this](core::MiUpgradeResult r) {
                if (!r.ok)
                    fail("hot upgrade reported failure");
                ++_upgrades;
                --_pendingControl;
            });
    });
    if (_cfg.forceUpgrade || rng.chance(0.5)) {
        // Concurrent-upgrade probe: a second request for the same slot
        // while the first is mid-flight must be rejected cleanly, not
        // interleave two context store/reload sequences.
        ++_pendingControl;
        sim.scheduleAt(at + sim::milliseconds(20), [this, slot] {
            _log.record(_bed->sim().now(),
                        "ctrl hotUpgrade(probe) slot=" +
                            std::to_string(slot));
            _bed->controller().hotUpgrade().upgrade(
                slot, std::vector<std::uint8_t>(4096, 0xAB),
                [this](core::HotUpgradeManager::Report r) {
                    if (r.ok)
                        ++_upgrades; // first finished unusually fast
                    --_pendingControl;
                });
        });
    }
}

void
Fuzzer::scheduleFaultWindows(sim::Rng &rng)
{
    if (!_cfg.enableFaults)
        return;
    sim::Simulator &sim = _bed->sim();
    int windows = static_cast<int>(rng.uniformInt(0, 2));
    for (int w = 0; w < windows; ++w) {
        sim::Tick t0 =
            _start + static_cast<sim::Tick>(
                         rng.uniformDouble(0.05, 0.7) *
                         static_cast<double>(_cfg.horizon));
        sim::Tick t1 = t0 + static_cast<sim::Tick>(
                                rng.uniformDouble(0.05, 0.25) *
                                static_cast<double>(_cfg.horizon));
        std::vector<ssd::FaultConfig> rates(_bed->ssdCount());
        for (auto &r : rates) {
            if (!rng.chance(0.7))
                continue;
            r.readErrorRate = rng.uniformDouble(0.002, 0.05);
            r.writeErrorRate = rng.uniformDouble(0.002, 0.05);
            r.latencySpikeRate = rng.uniformDouble(0.005, 0.05);
        }
        sim.scheduleAt(t0, [this, rates] {
            _log.record(_bed->sim().now(), "fault window OPEN");
            ++_faultWindows;
            _faultsEverActive = true;
            for (int s = 0; s < _bed->ssdCount(); ++s)
                _bed->ssd(s).faults() = rates[static_cast<std::size_t>(s)];
            // The oracle stays lenient about *failed* I/Os for the
            // rest of the run: commands submitted around the window
            // edges (or latched across a hot-upgrade pause) may fail
            // long after the rates drop back to zero. Data
            // verification of successful reads is never relaxed.
            for (Tenant &t : _tenants)
                t.oracle->setFaultsActive(true);
        });
        sim.scheduleAt(t1, [this] {
            _log.record(_bed->sim().now(), "fault window CLOSE");
            for (int s = 0; s < _bed->ssdCount(); ++s)
                _bed->ssd(s).faults() = ssd::FaultConfig{};
        });
    }
}

void
Fuzzer::scheduleTiering(sim::Rng &rng)
{
    if (_bed->remoteNodes() == 0)
        return;
    sim::Simulator &sim = _bed->sim();
    core::MgmtConsole &console = _bed->console();
    core::Eid eid = _bed->controller().endpoint().eid();
    core::TieringManager &tier = _bed->controller().tiering();
    auto hz = static_cast<double>(_cfg.horizon);

    // Spills: pinned runs open with tenant 0's chunk 0 onto node 0,
    // so the forced node loss below has a spilled chunk to recover.
    int spills = _cfg.forceTiering
                     ? 2
                     : static_cast<int>(rng.uniformInt(0, 2));
    for (int i = 0; i < spills; ++i) {
        bool pinned = _cfg.forceTiering && i == 0;
        auto tenant_ix =
            pinned ? 0 : rng.uniformInt(0, _tenants.size() - 1);
        auto fn = _tenants[tenant_ix].fn;
        auto chunk_ix =
            pinned ? 0u
                   : static_cast<std::uint32_t>(rng.uniformInt(0, 1));
        int slot = pinned ? _bed->remoteSlot(0, 0) : -1;
        sim::Tick at = _start + static_cast<sim::Tick>(
                                    (pinned ? 0.05
                                            : rng.uniformDouble(0.05, 0.3)) *
                                    hz);
        ++_pendingControl;
        sim.scheduleAt(at, [this, &tier, fn, chunk_ix, slot] {
            _log.record(_bed->sim().now(),
                        "tier spill fn=" + std::to_string(fn) +
                            " chunk=" + std::to_string(chunk_ix));
            // May fail legally: chunk past the namespace end, remote
            // slot full, recovery in progress, or the copy aborted.
            tier.spill(fn, 1, chunk_ix, slot, [this](bool) {
                ++_controlOps;
                --_pendingControl;
            });
        });
    }

    // Promotes: the pinned one lands after the recovery window and
    // pulls the re-spilled chunk back local; random ones are legal
    // rejections when the chunk is not spilled.
    int promotes = _cfg.forceTiering
                       ? 1
                       : static_cast<int>(rng.uniformInt(0, 2));
    for (int i = 0; i < promotes; ++i) {
        bool pinned = _cfg.forceTiering && i == 0;
        auto tenant_ix =
            pinned ? 0 : rng.uniformInt(0, _tenants.size() - 1);
        auto fn = _tenants[tenant_ix].fn;
        auto chunk_ix =
            pinned ? 0u
                   : static_cast<std::uint32_t>(rng.uniformInt(0, 1));
        sim::Tick at = _start + static_cast<sim::Tick>(
                                    (pinned ? 0.85
                                            : rng.uniformDouble(0.3, 0.8)) *
                                    hz);
        ++_pendingControl;
        sim.scheduleAt(at, [this, &tier, fn, chunk_ix] {
            _log.record(_bed->sim().now(),
                        "tier promote fn=" + std::to_string(fn) +
                            " chunk=" + std::to_string(chunk_ix));
            tier.promote(fn, 1, chunk_ix, [this](bool) {
                ++_controlOps;
                --_pendingControl;
            });
        });
    }

    // Sometimes hand placement to the automatic heat policy too (the
    // post-horizon drain disarms it again).
    if (_cfg.forceTiering || rng.chance(0.5)) {
        sim::Tick at = _start + static_cast<sim::Tick>(0.1 * hz);
        ++_pendingControl;
        sim.scheduleAt(at, [this, &console, eid] {
            _log.record(_bed->sim().now(), "ctrl setTierPolicy");
            console.setTierPolicy(
                eid, 0.5, 8.0, sim::milliseconds(10), [this](bool ok) {
                    BMS_ASSERT(ok, "setTierPolicy verb failed");
                    ++_controlOps;
                    --_pendingControl;
                });
        });
    }

    // Link latency spikes: network fault injection, so failed tenant
    // I/Os (timeout exhaustion) are excused exactly like media-fault
    // windows. Kept well under the 250 ms request timeout so a lone
    // spike delays rather than kills a healthy request.
    int windows = static_cast<int>(rng.uniformInt(0, 2));
    for (int w = 0; w < windows; ++w) {
        int node = static_cast<int>(
            rng.uniformInt(0, _bed->remoteNodes() - 1));
        sim::Tick t0 = _start + static_cast<sim::Tick>(
                                    rng.uniformDouble(0.1, 0.6) * hz);
        sim::Tick t1 = t0 + static_cast<sim::Tick>(
                                rng.uniformDouble(0.05, 0.2) * hz);
        sim::Tick extra = sim::milliseconds(1 + rng.uniformInt(0, 49));
        sim.scheduleAt(t0, [this, node, extra] {
            _log.record(_bed->sim().now(),
                        "net spike OPEN node=" + std::to_string(node));
            ++_faultWindows;
            _faultsEverActive = true;
            _bed->link(node).setExtraDelay(extra);
            for (Tenant &t : _tenants)
                t.oracle->setFaultsActive(true);
        });
        sim.scheduleAt(t1, [this, node] {
            _log.record(_bed->sim().now(),
                        "net spike CLOSE node=" + std::to_string(node));
            _bed->link(node).setExtraDelay(0);
        });
    }

    // Storage-node loss: the torture centerpiece. The node model
    // starts dropping everything, tenant I/O to it errors out via
    // client timeouts (excused — this IS a fault), and the failNode
    // verb drives recovery: every spilled chunk flips to its local
    // shadow with zero data loss, then re-spills to survivors.
    if (_cfg.forceTiering || rng.chance(0.3)) {
        int node = _cfg.forceTiering
                       ? 0
                       : static_cast<int>(rng.uniformInt(
                             0, _bed->remoteNodes() - 1));
        sim::Tick at = _start + static_cast<sim::Tick>(
                                    (_cfg.forceTiering
                                         ? 0.55
                                         : rng.uniformDouble(0.4, 0.7)) *
                                    hz);
        ++_pendingControl;
        sim.scheduleAt(at, [this, &console, eid, node] {
            _log.record(_bed->sim().now(),
                        "tier failNode node=" + std::to_string(node));
            ++_faultWindows;
            _faultsEverActive = true;
            for (Tenant &t : _tenants)
                t.oracle->setFaultsActive(true);
            console.failNode(
                eid, static_cast<std::uint8_t>(node),
                [this](core::MiFailNodeResult r) {
                    BMS_ASSERT(r.ok, "failNode verb failed");
                    ++_controlOps;
                    --_pendingControl;
                });
        });
    }
}

void
Fuzzer::scheduleThinOps(sim::Rng &rng)
{
    if (!_cfg.enableThin)
        return;
    if (!_cfg.forceThin && !rng.chance(0.6))
        return;
    // Draw the clone tenant's whole shape up front so the schedule is
    // fixed by the seed before any callback fires.
    TenantSpec cspec;
    cspec.iodepth = 1 + static_cast<int>(rng.uniformInt(0, 7));
    cspec.readRatio = rng.uniformDouble(0.3, 0.7);
    cspec.flushProb = 0.005;
    cspec.minIoBlocks = 1;
    cspec.maxIoBlocks = 1u << rng.uniformInt(0, 4);
    cspec.sequential = rng.chance(0.3);
    cspec.trimProb = rng.uniformDouble(0.02, 0.10);
    sim::Rng crng = rng.fork();
    double snap_frac = _cfg.forceThin ? 0.3 : rng.uniformDouble(0.2, 0.45);
    double del_frac = _cfg.forceThin ? 0.75 : rng.uniformDouble(0.6, 0.9);
    sim::Tick at = _start + static_cast<sim::Tick>(
                               snap_frac *
                               static_cast<double>(_cfg.horizon));
    core::Eid eid = _bed->controller().endpoint().eid();
    ++_pendingControl;
    _bed->sim().scheduleAt(at, [this, eid, cspec, crng, del_frac] {
        attemptSnapshot(eid, 0, cspec, crng, del_frac);
    });
}

void
Fuzzer::attemptSnapshot(core::Eid eid, int attempt, TenantSpec cspec,
                        sim::Rng crng, double del_frac)
{
    // A migration or chunk op (allocation scrub, CoW, trim) holds
    // tenant 0's namespace locked and the verb is refused; retry like
    // the scratch destroy does. The budget matches the scrub's own
    // firmware-activation patience (20 s): an allocation scrub caught
    // under a hot upgrade legally pins the namespace for seconds.
    sim::Tick submit = _bed->sim().now();
    if (attempt % 25 == 0)
        _log.record(submit, "ctrl snapshot fn=0 attempt=" +
                                std::to_string(attempt));
    _bed->console().snapshot(
        eid, 0, 1,
        [this, eid, attempt, cspec, crng, del_frac,
         submit](std::optional<std::uint32_t> snap_id,
                 std::vector<core::MiSnapInfo> all) {
            if (!snap_id) {
                if (attempt >= 10'000)
                    fail("snapshot kept being refused");
                _bed->sim().scheduleAfter(
                    sim::milliseconds(2),
                    [this, eid, attempt, cspec, crng, del_frac] {
                        attemptSnapshot(eid, attempt + 1, cspec, crng,
                                        del_frac);
                    });
                return;
            }
            BMS_ASSERT(!all.empty(), "snapshot listing empty");
            ++_snapshots;
            ++_controlOps;
            // Freeze the oracle's view of what the pinned image may
            // hold: every stamp alive at any point since this verb was
            // submitted. Writes landing while the verb was on the MCTP
            // wire only widen the set — lenient, still sound.
            _cloneLineage = _tenants[0].oracle->captureLineage(submit);
            // The snapshot dies late in the window; the clone keeps
            // its own chunk pins and lives on.
            sim::Tick del_at = std::max(
                _start + static_cast<sim::Tick>(
                             del_frac * static_cast<double>(_cfg.horizon)),
                _bed->sim().now() + sim::milliseconds(1));
            ++_pendingControl;
            _bed->sim().scheduleAt(
                del_at, [this, eid, snap = *snap_id] {
                    _log.record(_bed->sim().now(),
                                "ctrl deleteSnapshot id=" +
                                    std::to_string(snap));
                    _bed->console().deleteSnapshot(
                        eid, snap, [this](bool ok) {
                            if (!ok)
                                fail("deleteSnapshot of a live "
                                     "snapshot refused");
                            ++_snapshotDeletes;
                            ++_controlOps;
                            --_pendingControl;
                        });
                });
            cloneFromSnapshot(eid, *snap_id, cspec, crng);
        });
}

void
Fuzzer::cloneFromSnapshot(core::Eid eid, std::uint32_t snap_id,
                          TenantSpec cspec, sim::Rng crng)
{
    // The clone rides the topmost VF — far above tenant functions
    // (<= 16) and the scratch VFs (pfCount..pfCount+3).
    auto fn = static_cast<pcie::FunctionId>(
        _bed->engine().config().totalFunctions() - 1);
    _log.record(_bed->sim().now(),
                "ctrl clone snap=" + std::to_string(snap_id) +
                    " fn=" + std::to_string(fn));
    _bed->console().clone(
        eid, snap_id, static_cast<std::uint8_t>(fn), core::QosLimits(),
        [this, fn, cspec, crng](std::optional<std::uint32_t> nsid) {
            if (!nsid)
                fail("clone of a live snapshot refused");
            ++_clones;
            ++_controlOps;
            // Driver bring-up is asynchronous (we are inside an event
            // handler); the cell hands the driver to its own ready
            // callback.
            auto drvp = std::make_shared<host::NvmeDriver *>(nullptr);
            auto ready = [this, fn, cspec, crng, drvp] {
                sim::Simulator &sim = _bed->sim();
                OracleDevice::Config ocfg = _t0cfg;
                ocfg.uid = 100 + _clones;
                auto *oracle = sim.make<OracleDevice>(
                    sim, "clone-oracle", **drvp, _bed->host().memory(),
                    _log, ocfg);
                oracle->adoptLineage(_cloneLineage);
                if (_faultsEverActive)
                    oracle->setFaultsActive(true);
                auto *wl = sim.make<TenantWorkload>(
                    sim, "clone-tenant", *oracle, crng, cspec);
                _tenants.push_back(Tenant{fn, oracle, wl});
                // Past the horizon (bring-up raced the drain) the
                // clone skips its workload; the final sweep still
                // verifies every inherited block against the lineage.
                if (sim.now() < _start + _cfg.horizon)
                    wl->start();
                --_pendingControl;
            };
            *drvp = &_bed->attachDriver(fn, *nsid, ready);
        });
}

void
Fuzzer::drain(const char *stage, const std::function<bool()> &done,
              sim::Tick timeout)
{
    sim::Simulator &sim = _bed->sim();
    sim::Tick deadline = sim.now() + timeout;
    while (!done()) {
        if (sim.now() >= deadline)
            fail(std::string("drain timed out at stage '") + stage + "'");
        sim.runUntil(sim.now() + sim::milliseconds(1));
    }
}

void
Fuzzer::finalSweep()
{
    // Read back every verified block once, sequentially: whatever the
    // schedule left behind must decode to an acceptable stamp.
    int pending = 0;
    std::uint64_t sweep_errors = 0;
    for (Tenant &t : _tenants) {
        std::uint32_t step = t.oracle->maxIoBlocks();
        for (std::uint64_t b = 0; b < t.oracle->blocks(); b += step) {
            auto n = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(step, t.oracle->blocks() - b));
            ++pending;
            t.oracle->read(b, n, [&pending, &sweep_errors](bool ok) {
                --pending;
                if (!ok)
                    ++sweep_errors;
            });
        }
    }
    drain("final sweep", [&pending] { return pending == 0; },
          sim::seconds(30));
    BMS_ASSERT_EQ(sweep_errors, 0u,
                  "final sweep reads failed with fault rates at zero");
}

FuzzReport
Fuzzer::run()
{
    sim::Rng rng(_cfg.seed ^ 0xfa57'f00d'5eedULL);
    // Topology from the seed.
    int ssds = _cfg.minSsds +
               static_cast<int>(
                   rng.uniformInt(0, _cfg.maxSsds - _cfg.minSsds));
    harness::TestbedConfig tb;
    tb.ssdCount = ssds;
    tb.seed = _cfg.seed;
    tb.ssd.functionalData = true;
    // Occasionally run the store-and-forward ablation datapath.
    tb.engine.zeroCopy = !rng.chance(0.2);
    // Multi-queue front end: vary SQ count per tenant, the arbiter,
    // its burst, and the doorbell-batching window so fuzz runs cover
    // the RR/WRR fetch paths as well as fetch coalescing. Drawn from
    // a forked stream so the pre-existing pinned seeds (1-8,
    // 201-204) keep their exact topology and schedule draws.
    sim::Rng mq_rng(_cfg.seed ^ 0x9e37'79b9'7f4aULL);
    tb.ioQueues = static_cast<std::uint16_t>(1 << mq_rng.uniformInt(0, 3));
    tb.engine.frontArb = mq_rng.chance(0.5)
                             ? nvme::ArbitrationMode::RoundRobin
                             : nvme::ArbitrationMode::WeightedRoundRobin;
    tb.engine.frontArbBurst =
        static_cast<std::uint8_t>(1 << mq_rng.uniformInt(0, 3));
    if (mq_rng.chance(0.5))
        tb.engine.frontDoorbellBatch =
            sim::nanoseconds(100 << mq_rng.uniformInt(0, 2));
    if (tb.engine.frontArb == nvme::ArbitrationMode::WeightedRoundRobin) {
        // Mixed-priority queues; urgent stays rare so the weighted
        // classes actually get serviced.
        tb.sqPriorities = {nvme::kQPrioHigh, nvme::kQPrioMedium,
                           nvme::kQPrioLow};
        if (mq_rng.chance(0.25))
            tb.sqPriorities.push_back(nvme::kQPrioUrgent);
    }
    // Migration runs shrink chunks (8/16/32 MiB instead of 64 GiB) so
    // a whole-chunk copy fits inside the simulated horizon.
    if (_cfg.enableMigration)
        tb.chunkBytes = sim::mib(8ull << rng.uniformInt(0, 2));
    // Remote tier: everything remote draws from its own forked
    // stream, so seeds predating the tier keep their exact topology
    // and schedule draws whether or not it is enabled.
    sim::Rng remote_rng(_cfg.seed ^ 0x7e11'ca57'0ff5ULL);
    if (_cfg.maxRemoteNodes > 0) {
        tb.remoteNodes =
            _cfg.forceTiering
                ? _cfg.maxRemoteNodes
                : 1 + static_cast<int>(remote_rng.uniformInt(
                          0, _cfg.maxRemoteNodes - 1));
        tb.volumesPerNode =
            1 + static_cast<int>(remote_rng.uniformInt(0, 1));
        tb.remoteServer.ssd.functionalData = true;
        // Tier moves need migration-scale chunks even when local
        // migrations are off: a 64 MiB remote volume holds zero of
        // the default 64 GiB chunks.
        if (tb.chunkBytes == 0)
            tb.chunkBytes = sim::mib(8ull << remote_rng.uniformInt(0, 2));
        // Pinned runs need the opening spill to complete before the
        // node loss lands: 8 MiB at the 400 MB/s copy budget is
        // ~21 ms, which fits ahead of a loss at 55% of a 120 ms
        // horizon (32 MiB would not).
        if (_cfg.forceTiering)
            tb.chunkBytes = sim::mib(8);
    }
    // Thin provisioning / snapshots: like the remote tier, all thin
    // randomness forks its own stream so pre-thin pinned seeds keep
    // their exact draws.
    sim::Rng thin_rng(_cfg.seed ^ 0x7411'c0de'5a11ULL);
    _bed = std::make_unique<harness::BmStoreTestbed>(tb);
    _start = _bed->sim().now();
    _log.record(_start, "run start: seed=" + std::to_string(_cfg.seed) +
                            " ssds=" + std::to_string(ssds));

    buildTenants(rng, thin_rng);
    // Tenant bring-up (driver init, namespace attach) advances the
    // clock; the torture window opens after it, so every scheduled
    // event lands in the future even for short horizons.
    _start = _bed->sim().now();
    scheduleControlOps(rng);
    scheduleUpgrades(rng);
    scheduleMigrations(rng);
    scheduleFaultWindows(rng);
    scheduleTiering(remote_rng);
    scheduleThinOps(thin_rng);

    _bed->sim().runUntil(_start + _cfg.horizon);

    if (_bed->remoteNodes() > 0) {
        // Disarm the automatic tier policy: a periodic tick could
        // start fresh moves forever and the drain would never settle.
        core::TieringConfig off = _bed->controller().tiering().policy();
        off.policyPeriod = 0;
        _bed->controller().tiering().setPolicy(off);
    }

    // Stop tenants and wait out everything in flight — including I/O
    // latched across a multi-second firmware activation stall. The
    // stop loop lives inside the predicate: a clone tenant whose
    // driver bring-up raced the horizon joins _tenants mid-drain and
    // must be stopped too (pending control work holds the drain open
    // until it lands).
    std::size_t stopped = 0;
    int drained = 0;
    drain("tenant+control drain",
          [this, &stopped, &drained] {
              while (stopped < _tenants.size())
                  _tenants[stopped++].workload->stop(
                      [&drained] { ++drained; });
              return drained == static_cast<int>(stopped) &&
                     _pendingControl == 0;
          },
          sim::seconds(40));
    int tenants = static_cast<int>(_tenants.size());
    drain("migration drain",
          [this] { return _bed->controller().migration().idle(); },
          sim::seconds(40));
    // Chunk ops (allocation scrubs, CoW copies, trims) queue behind
    // migrations; let them settle before sweeping.
    drain("chunk-op drain",
          [this] {
              return _bed->engine().targetController().pendingChunkOps() ==
                         0 &&
                     _bed->controller().migration().idle();
          },
          sim::seconds(40));
    if (_bed->remoteNodes() > 0) {
        // Tier moves (including the post-loss respill chain) run
        // through the migration manager too; wait them out, then
        // re-check the migration queue they may have refilled.
        drain("tiering drain",
              [this] { return _bed->controller().tiering().idle(); },
              sim::seconds(40));
        drain("tier-move migration drain",
              [this] { return _bed->controller().migration().idle(); },
              sim::seconds(40));
    }
    finalSweep();

    // Whole-structure checks after the dust settles.
    int total_slots = _bed->ssdCount() +
                      _bed->remoteNodes() * _bed->config().volumesPerNode;
    for (int s = 0; s < total_slots; ++s)
        BMS_ASSERT_EQ(_bed->engine().adaptor(s).inflight(), 0u,
                      "adaptor ", s, " left with in-flight commands");
    core::MigrationGate &gate = _bed->engine().migrationGate();
    BMS_ASSERT(!gate.migrationActive(),
               "migration window left open after drain");
    BMS_ASSERT_EQ(gate.heldCount(), std::size_t(0),
                  "held writes left behind after drain");
    BMS_ASSERT_EQ(_bed->engine().targetController().pendingChunkOps(),
                  std::size_t(0), "chunk ops left behind after drain");
    // Everything is quiesced: pool refcounts must match the owner
    // census exactly (namespaces + surviving snapshots). Remote-tier
    // runs skip the strict form — a spilled chunk's local shadow
    // holds a reference with no record owner by design.
    if (_bed->remoteNodes() == 0)
        _bed->controller().namespaces().checkRefInvariants(true);
    for (Tenant &t : _tenants) {
        core::NsBinding *b = _bed->engine().findBinding(t.fn, 1);
        BMS_ASSERT(b, "tenant binding vanished: fn=", t.fn);
        b->map.checkInvariants();
    }

    FuzzReport rep;
    rep.seed = _cfg.seed;
    rep.tenants = tenants;
    rep.ssds = ssds;
    for (Tenant &t : _tenants) {
        rep.totalOps += t.workload->ops();
        rep.totalErrors += t.workload->errors();
        rep.verifiedBlocks += t.oracle->verifiedBlocks();
        rep.trims += t.oracle->trims();
        if (t.workload->maxCompletionGap() > rep.maxCompletionGap)
            rep.maxCompletionGap = t.workload->maxCompletionGap();
    }
    rep.controlOps = _controlOps;
    rep.upgrades = _upgrades;
    rep.upgradeRejections =
        _bed->controller().hotUpgrade().upgradesRejected();
    rep.faultWindows = _faultWindows;
    const core::MigrationManager &mig = _bed->controller().migration();
    rep.migrationsStarted = mig.started();
    rep.migrationsCompleted = mig.completed();
    rep.migrationsAborted = mig.aborted();
    rep.migrationsRejected = mig.rejected();
    rep.evacuations = mig.evacuations();
    rep.migratedBytes = mig.bytesCopied();
    for (int s = 0; s < _bed->ssdCount(); ++s) {
        rep.injectedMediaErrors += _bed->ssd(s).mediaErrors();
        rep.injectedLatencySpikes += _bed->ssd(s).latencySpikes();
    }
    rep.remoteNodes = _bed->remoteNodes();
    const core::TieringManager &tier = _bed->controller().tiering();
    rep.spills = tier.spills();
    rep.promotes = tier.promotes();
    rep.tierFailures = tier.failures();
    rep.nodeLosses = tier.nodeLosses();
    rep.chunksRecovered = tier.chunksRecovered();
    rep.chunksRespilled = tier.chunksRespilled();
    for (int n2 = 0; n2 < _bed->remoteNodes(); ++n2) {
        for (int v = 0; v < _bed->config().volumesPerNode; ++v) {
            rep.remoteTimeouts += _bed->remoteDevice(n2, v).timeouts();
            rep.remoteRetries += _bed->remoteDevice(n2, v).retries();
        }
    }
    const core::TargetController &tc = _bed->engine().targetController();
    rep.thinAllocs = tc.allocatedOnWrite();
    rep.trimmedChunks = tc.trimmedChunks();
    rep.dsmCommands = tc.dsmCommands();
    rep.zeroFillReads = tc.zeroFillReads();
    rep.cowCopies = tc.cowTriggers();
    rep.snapshots = _snapshots;
    rep.clones = _clones;
    rep.snapshotDeletes = _snapshotDeletes;
    rep.finishedAt = _bed->sim().now();

    if (!_faultsEverActive && rep.totalErrors != 0)
        fail("tenant I/O failed without any fault window");
    // The longest stall must stay well inside the host NVMe timeout
    // (30 s) or the transparency story breaks.
    if (rep.maxCompletionGap > sim::seconds(10))
        fail("completion gap exceeded 10 s: " +
             std::to_string(sim::toMs(rep.maxCompletionGap)) + " ms");
    return rep;
}

} // namespace bms::fuzz
