/**
 * @file
 * Whole-stack simulation fuzzer (FoundationDB-style torture test).
 *
 * One 64-bit seed deterministically generates:
 *   - a random topology (SSD count, tenant count, namespace shapes,
 *     zero-copy vs store-and-forward engine),
 *   - concurrent tenant workloads, each verified block-for-block by a
 *     write-stamp OracleDevice,
 *   - mid-I/O control-plane traffic over the out-of-band console
 *     (health polls, I/O stats, QoS reprogramming, scratch namespace
 *     create/destroy, live namespace grow),
 *   - SSD firmware hot-upgrades under load (plus a concurrent-upgrade
 *     rejection probe),
 *   - fault-injection windows (media read/write errors, latency
 *     spikes) on the back-end SSDs,
 *   - a disaggregated remote tier (maxRemoteNodes > 0): storage
 *     nodes behind network links, chunk spills/promotes mid-I/O,
 *     link latency spikes, and a storage-node loss recovered via the
 *     failNode verb — the oracle verifies every tenant block across
 *     all of it.
 *
 * Everything runs on the simulator clock, so a failing seed replays
 * the exact interleaving: `fuzz --seed=N` (or BMS_FUZZ_SEED=N).
 */

#ifndef BMS_FUZZ_FUZZER_HH
#define BMS_FUZZ_FUZZER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "fuzz/op_log.hh"
#include "fuzz/oracle.hh"
#include "fuzz/schedule.hh"
#include "harness/testbeds.hh"

namespace bms::fuzz {

/** One fuzz run's knobs (everything else comes from the seed). */
struct FuzzConfig
{
    std::uint64_t seed = 1;
    /** Measured torture window (control ops land inside it). */
    sim::Tick horizon = sim::milliseconds(120);
    int maxTenants = 3; ///< 1..16 (4 PFs, then VFs — multi-VF runs)
    int maxSsds = 2;
    int minSsds = 1; ///< raise to 2 to guarantee migration targets
    bool enableFaults = true;
    bool enableControlOps = true;
    bool enableHotUpgrade = true;
    /** Always schedule exactly one slot-0 upgrade (availability
     *  tests want the hiccup deterministically present). */
    bool forceUpgrade = false;
    /** Mid-I/O chunk migrations/evacuations (needs >= 2 SSDs; also
     *  shrinks chunks to 8-32 MiB so copies fit the horizon). */
    bool enableMigration = true;
    /** Always schedule a migrate + an evacuate (pinned seeds). */
    bool forceMigration = false;
    /**
     * Remote tier: up to this many storage nodes behind the card
     * (0 = purely local, the historical topology). All remote
     * randomness comes from a forked stream, so enabling it does not
     * disturb the draws of the pre-existing pinned seeds.
     */
    int maxRemoteNodes = 0;
    /** Pin the tier schedule: an early spill onto node 0, a node-0
     *  loss mid-window, and a late promote (pinned seeds 401-404). */
    bool forceTiering = false;
    /**
     * Thin provisioning / TRIM / snapshot torture: tenants become
     * thin namespaces (allocate-on-write + zero-fill reads),
     * workloads mix Dataset-Management deallocates into the stream,
     * and a mid-run snapshot → clone → delete-snapshot lifecycle
     * drives chunk CoW under live I/O, with the clone verified by its
     * own oracle against the snapshot's captured lineage. All extra
     * randomness comes from a forked stream, so seeds predating thin
     * provisioning replay byte-identically.
     */
    bool enableThin = false;
    /** Pin the thin schedule: every tenant thin and trimming, a
     *  guaranteed snapshot of tenant 0, a verified clone, and a late
     *  snapshot delete (pinned seeds 501-504). Implies enableThin. */
    bool forceThin = false;
    std::size_t opLogCapacity = 256;
};

/** Deterministic outcome summary of one run. */
struct FuzzReport
{
    std::uint64_t seed = 0;
    int tenants = 0;
    int ssds = 0;
    std::uint64_t totalOps = 0;
    std::uint64_t totalErrors = 0; ///< failed tenant I/Os (all excused)
    std::uint64_t verifiedBlocks = 0;
    std::uint64_t controlOps = 0;
    std::uint32_t upgrades = 0;
    std::uint32_t upgradeRejections = 0;
    int faultWindows = 0;
    std::uint64_t injectedMediaErrors = 0;
    std::uint64_t injectedLatencySpikes = 0;
    std::uint32_t migrationsStarted = 0;
    std::uint32_t migrationsCompleted = 0;
    std::uint32_t migrationsAborted = 0;
    std::uint32_t migrationsRejected = 0;
    std::uint32_t evacuations = 0;
    std::uint64_t migratedBytes = 0;
    /** @name Remote tier (zero when maxRemoteNodes == 0). */
    /// @{
    int remoteNodes = 0;
    std::uint32_t spills = 0;
    std::uint32_t promotes = 0;
    std::uint32_t tierFailures = 0; ///< rejected/aborted tier moves
    std::uint32_t nodeLosses = 0;
    std::uint32_t chunksRecovered = 0;
    std::uint32_t chunksRespilled = 0;
    std::uint64_t remoteTimeouts = 0;
    std::uint64_t remoteRetries = 0;
    /// @}
    /** @name Thin provisioning / snapshots (zero unless enableThin). */
    /// @{
    std::uint64_t trims = 0;         ///< deallocates issued by tenants
    std::uint64_t thinAllocs = 0;    ///< chunks allocated on first write
    std::uint64_t trimmedChunks = 0; ///< whole chunks returned to pools
    std::uint64_t dsmCommands = 0;   ///< DSM/Deallocate commands served
    std::uint64_t zeroFillReads = 0; ///< reads served as zeros, no media
    std::uint64_t cowCopies = 0;     ///< chunk CoW copies triggered
    std::uint32_t snapshots = 0;
    std::uint32_t clones = 0;
    std::uint32_t snapshotDeletes = 0;
    /// @}
    /** Longest tenant submit→complete span (upgrade pause shows up
     *  here; must stay under the 30 s host NVMe timeout). */
    sim::Tick maxCompletionGap = 0;
    sim::Tick finishedAt = 0;
};

/** Builds the testbed from the seed and runs one torture schedule. */
class Fuzzer
{
  public:
    explicit Fuzzer(FuzzConfig cfg);
    ~Fuzzer();

    /** Run to completion; panics (with seed + op log) on any oracle
     *  or invariant violation. */
    FuzzReport run();

  private:
    struct Tenant
    {
        pcie::FunctionId fn = 0;
        OracleDevice *oracle = nullptr;
        TenantWorkload *workload = nullptr;
    };

    void buildTenants(sim::Rng &rng, sim::Rng &thin_rng);
    void scheduleControlOps(sim::Rng &rng);
    void scheduleUpgrades(sim::Rng &rng);
    void scheduleMigrations(sim::Rng &rng);
    void scheduleFaultWindows(sim::Rng &rng);
    void scheduleTiering(sim::Rng &remote_rng);
    void scheduleThinOps(sim::Rng &thin_rng);
    void attemptSnapshot(core::Eid eid, int attempt, TenantSpec cspec,
                         sim::Rng crng, double del_frac);
    void cloneFromSnapshot(core::Eid eid, std::uint32_t snap_id,
                           TenantSpec cspec, sim::Rng crng);
    void destroyScratch(core::Eid eid, std::uint8_t vf,
                        std::uint32_t nsid, int attempt);
    void drain(const char *stage, const std::function<bool()> &done,
               sim::Tick timeout);
    void finalSweep();
    [[noreturn]] void fail(const std::string &what);

    FuzzConfig _cfg;
    OpLog _log;
    std::unique_ptr<harness::BmStoreTestbed> _bed;
    std::vector<Tenant> _tenants;
    sim::Tick _start = 0; ///< tick when the torture window opened
    int _pendingControl = 0;
    std::uint64_t _controlOps = 0;
    std::uint32_t _upgrades = 0;
    int _faultWindows = 0;
    bool _faultsEverActive = false;
    std::uint32_t _snapshots = 0;
    std::uint32_t _clones = 0;
    std::uint32_t _snapshotDeletes = 0;
    /** Tenant 0's oracle window (the clone inherits it verbatim). */
    OracleDevice::Config _t0cfg;
    /** Stamp lineage captured when the snapshot pinned tenant 0. */
    OracleDevice::Lineage _cloneLineage;
};

} // namespace bms::fuzz

#endif // BMS_FUZZ_FUZZER_HH
