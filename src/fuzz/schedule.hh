/**
 * @file
 * Randomized tenant workloads for the simulation fuzzer.
 *
 * Each TenantWorkload is a closed-loop issuer (fio-style) over one
 * OracleDevice: it keeps `iodepth` verified I/Os in flight, picking
 * op kind, size, and placement from its own forked Rng stream so the
 * whole schedule replays exactly from the fuzzer seed.
 */

#ifndef BMS_FUZZ_SCHEDULE_HH
#define BMS_FUZZ_SCHEDULE_HH

#include <cstdint>
#include <functional>

#include "fuzz/op_log.hh"
#include "fuzz/oracle.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace bms::fuzz {

/** Shape of one tenant's I/O stream (drawn from the seed). */
struct TenantSpec
{
    int iodepth = 4;         ///< in-flight target, 1..16
    double readRatio = 0.5;  ///< read probability per op
    double flushProb = 0.01; ///< flush probability per op
    /** TRIM (deallocate) probability per op — thin-provisioning runs
     *  only. Exactly 0.0 consumes no extra Rng draws, so pre-thin
     *  pinned seeds replay byte-identically. */
    double trimProb = 0.0;
    std::uint32_t minIoBlocks = 1; ///< 4 KiB units
    std::uint32_t maxIoBlocks = 8;
    bool sequential = false; ///< sequential cursor vs uniform random
};

/** Closed-loop random tenant driving one oracle device. */
class TenantWorkload : public sim::SimObject
{
  public:
    TenantWorkload(sim::Simulator &sim, std::string name,
                   OracleDevice &dev, sim::Rng rng, TenantSpec spec);

    void start();

    /** Stop issuing; @p drained fires once in-flight I/O completes. */
    void stop(std::function<void()> drained);

    std::uint64_t ops() const { return _ops; }
    std::uint64_t errors() const { return _errors; }
    std::uint32_t outstanding() const { return _outstanding; }
    /** Longest submit→complete span seen (hot-upgrade hiccup bound). */
    sim::Tick maxCompletionGap() const { return _maxGap; }

  private:
    void pump();
    void issueOne();
    void completed(sim::Tick submitted, bool ok);

    OracleDevice &_dev;
    sim::Rng _rng;
    TenantSpec _spec;

    bool _running = false;
    bool _stopping = false;
    std::uint32_t _outstanding = 0;
    std::uint64_t _seqCursor = 0;
    std::uint64_t _ops = 0;
    std::uint64_t _errors = 0;
    sim::Tick _maxGap = 0;
    std::function<void()> _drained;
};

} // namespace bms::fuzz

#endif // BMS_FUZZ_SCHEDULE_HH
