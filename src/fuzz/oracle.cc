#include "fuzz/oracle.hh"

#include <algorithm>
#include <cstring>
#include <iostream>
#include <sstream>
#include <utility>

#include "nvme/defs.hh"
#include "sim/check.hh"

namespace bms::fuzz {

namespace {

/** Pattern salt base; xor'd with the oracle uid per word group. */
constexpr std::uint64_t kMagic = 0xb35ee0f5'0c1e0000ULL;
constexpr std::uint32_t kWordsPerBlock = nvme::kBlockSize / 8;

std::uint64_t
mixWord(std::uint32_t uid, std::uint64_t block, std::uint64_t stamp)
{
    std::uint64_t v = (static_cast<std::uint64_t>(uid) << 48) ^ block ^
                      (stamp * 0x9e3779b97f4a7c15ULL);
    v ^= v >> 29;
    return v;
}

} // namespace

OracleDevice::OracleDevice(sim::Simulator &sim, std::string name,
                           host::BlockDeviceIf &dev, host::HostMemory &mem,
                           OpLog &log, Config cfg)
    : SimObject(sim, std::move(name)), _dev(dev), _mem(mem), _log(log),
      _cfg(cfg)
{
    BMS_ASSERT(_cfg.regionBytes >= nvme::kBlockSize,
               "oracle window smaller than one block");
    BMS_ASSERT_EQ(_cfg.regionBytes % nvme::kBlockSize, 0u,
                  "oracle window must be block aligned");
    BMS_ASSERT_EQ(_cfg.baseOffset % nvme::kBlockSize, 0u,
                  "oracle window offset must be block aligned");
    BMS_ASSERT(_cfg.maxIoBytes >= nvme::kBlockSize &&
                   _cfg.maxIoBytes % nvme::kBlockSize == 0,
               "bad oracle maxIoBytes: ", _cfg.maxIoBytes);
    _state.resize(_cfg.regionBytes / nvme::kBlockSize);
}

std::uint32_t
OracleDevice::maxIoBlocks() const
{
    return _cfg.maxIoBytes / nvme::kBlockSize;
}

std::uint64_t
OracleDevice::acquireBuffer()
{
    if (!_bufPool.empty()) {
        std::uint64_t addr = _bufPool.back();
        _bufPool.pop_back();
        return addr;
    }
    // Page alignment matters: chunk-straddling commands are split into
    // extents and require page-aligned PRPs (engine invariant).
    return _mem.alloc(_cfg.maxIoBytes, nvme::kPageSize);
}

void
OracleDevice::releaseBuffer(std::uint64_t addr)
{
    _bufPool.push_back(addr);
}

void
OracleDevice::fillPattern(std::uint8_t *buf, std::uint64_t block,
                          std::uint64_t stamp) const
{
    auto *words = reinterpret_cast<std::uint64_t *>(buf);
    for (std::uint32_t k = 0; k < kWordsPerBlock; k += 4) {
        words[k] = kMagic ^ _cfg.uid;
        words[k + 1] = block;
        words[k + 2] = stamp;
        words[k + 3] = mixWord(_cfg.uid, block, stamp);
    }
}

void
OracleDevice::fail(const std::string &what)
{
    _log.dump(std::cerr);
    BMS_PANIC("fuzz oracle ", name(), ": ", what,
              " [seed=", _cfg.seed, " tick=", now(), "]");
}

std::uint64_t
OracleDevice::verifyBlock(const std::uint8_t *img, std::uint64_t block,
                          const std::vector<std::uint64_t> &valid)
{
    const auto *words = reinterpret_cast<const std::uint64_t *>(img);
    bool all_zero =
        std::all_of(words, words + kWordsPerBlock,
                    [](std::uint64_t w) { return w == 0; });
    std::uint64_t stamp = all_zero ? 0 : words[2];
    if (std::find(valid.begin(), valid.end(), stamp) == valid.end()) {
        std::ostringstream os;
        os << "block " << block << " decoded stamp " << stamp
           << " not in acceptable set {";
        for (std::uint64_t s : valid)
            os << " " << s;
        os << " }";
        fail(os.str());
    }
    if (all_zero)
        return 0;
    for (std::uint32_t k = 0; k < kWordsPerBlock; k += 4) {
        if (words[k] != (kMagic ^ _cfg.uid) || words[k + 1] != block ||
            words[k + 2] != stamp ||
            words[k + 3] != mixWord(_cfg.uid, block, stamp)) {
            std::ostringstream os;
            os << "block " << block << " torn at word " << k
               << ": got {" << std::hex << words[k] << ", " << words[k + 1]
               << ", " << words[k + 2] << ", " << words[k + 3]
               << "}, expected stamp " << std::dec << stamp;
            fail(os.str());
        }
    }
    return stamp;
}

void
OracleDevice::write(std::uint64_t block, std::uint32_t nblocks,
                    std::function<void(bool)> done)
{
    BMS_ASSERT(nblocks > 0 && nblocks <= maxIoBlocks(),
               "oracle write size out of range: ", nblocks);
    BMS_ASSERT_LE(block + nblocks, blocks(), "oracle write out of window");
    std::uint64_t stamp = ++_nextStamp;
    for (std::uint64_t b = block; b < block + nblocks; ++b) {
        BMS_ASSERT_EQ(_state[b].inflight, 0u,
                      "overlapping in-flight writes on block ", b,
                      " (generator bug)");
        _state[b].inflight = stamp;
        // The stamp's data may land on media any time from now on.
        _state[b].lives.push_back(StampLife{stamp, now(), kNever});
    }
    std::uint32_t len = nblocks * nvme::kBlockSize;
    std::uint64_t buf = acquireBuffer();
    std::vector<std::uint8_t> img(len);
    for (std::uint32_t i = 0; i < nblocks; ++i)
        fillPattern(img.data() + i * nvme::kBlockSize, block + i, stamp);
    _mem.write(buf, len, img.data());

    bool faulty_at_submit = _faultsActive;
    ++_writes;
    _log.record(now(), name() + " write  blk=" + std::to_string(block) +
                           "+" + std::to_string(nblocks) +
                           " stamp=" + std::to_string(stamp));

    host::BlockRequest req;
    req.op = host::BlockRequest::Op::Write;
    req.offset = _cfg.baseOffset + block * nvme::kBlockSize;
    req.len = len;
    req.dataAddr = buf;
    req.done = [this, block, nblocks, stamp, buf, faulty_at_submit,
                done = std::move(done)](bool ok) {
        releaseBuffer(buf);
        // Oldest in-flight read submit tick: dead stamps no read can
        // observe any more are pruned below.
        sim::Tick prune_before = now();
        for (sim::Tick t : _readSubmits)
            prune_before = std::min(prune_before, t);
        for (std::uint64_t b = block; b < block + nblocks; ++b) {
            BlockState &st = _state[b];
            if (st.inflight == stamp)
                st.inflight = 0;
            if (ok) {
                // Read-your-writes: every older stamp is dead from
                // here on (the overwrite committed no later than this
                // completion).  A failed write's stamp instead stays
                // alive next to the old ones — it may have partially
                // committed (per-extent splits).
                for (StampLife &l : st.lives)
                    if (l.died == kNever && l.stamp != stamp)
                        l.died = now();
            }
            std::erase_if(st.lives, [prune_before](const StampLife &l) {
                return l.died < prune_before;
            });
        }
        if (!ok) {
            if (!faulty_at_submit && !_faultsActive)
                fail("write stamp=" + std::to_string(stamp) +
                     " blk=" + std::to_string(block) + "+" +
                     std::to_string(nblocks) +
                     " failed with no fault injection active");
            ++_excusedErrors;
            _log.record(now(), name() + " write-FAILED(excused) stamp=" +
                                   std::to_string(stamp));
        }
        if (done)
            done(ok);
    };
    _dev.submit(std::move(req));
}

void
OracleDevice::read(std::uint64_t block, std::uint32_t nblocks,
                   std::function<void(bool)> done)
{
    BMS_ASSERT(nblocks > 0 && nblocks <= maxIoBlocks(),
               "oracle read size out of range: ", nblocks);
    BMS_ASSERT_LE(block + nblocks, blocks(), "oracle read out of window");
    std::uint32_t len = nblocks * nvme::kBlockSize;
    std::uint64_t buf = acquireBuffer();
    bool faulty_at_submit = _faultsActive;
    sim::Tick submitted = now();
    _readSubmits.push_back(submitted);
    ++_reads;
    _log.record(now(), name() + " read   blk=" + std::to_string(block) +
                           "+" + std::to_string(nblocks));

    host::BlockRequest req;
    req.op = host::BlockRequest::Op::Read;
    req.offset = _cfg.baseOffset + block * nvme::kBlockSize;
    req.len = len;
    req.dataAddr = buf;
    req.done = [this, block, nblocks, len, buf, submitted, faulty_at_submit,
                done = std::move(done)](bool ok) {
        auto it = std::find(_readSubmits.begin(), _readSubmits.end(),
                            submitted);
        BMS_ASSERT(it != _readSubmits.end(), "read submit tick lost");
        _readSubmits.erase(it);
        if (!ok) {
            releaseBuffer(buf);
            if (!faulty_at_submit && !_faultsActive)
                fail("read blk=" + std::to_string(block) + "+" +
                     std::to_string(nblocks) +
                     " failed with no fault injection active");
            ++_excusedErrors;
            _log.record(now(), name() + " read-FAILED(excused) blk=" +
                                   std::to_string(block));
            if (done)
                done(false);
            return;
        }
        std::vector<std::uint8_t> img(len);
        _mem.read(buf, len, img.data());
        releaseBuffer(buf);
        for (std::uint32_t i = 0; i < nblocks; ++i) {
            std::uint64_t b = block + i;
            // Legal stamps: lifetime overlaps this read's flight.
            // (born <= now() holds for every recorded entry, so only
            // the death side needs checking.)
            std::vector<std::uint64_t> valid;
            for (const StampLife &l : _state[b].lives)
                if (l.died >= submitted)
                    valid.push_back(l.stamp);
            verifyBlock(img.data() + i * nvme::kBlockSize, b, valid);
            ++_verifiedBlocks;
        }
        if (done)
            done(true);
    };
    _dev.submit(std::move(req));
}

void
OracleDevice::flush(std::function<void(bool)> done)
{
    ++_flushes;
    _log.record(now(), name() + " flush");
    host::BlockRequest req;
    req.op = host::BlockRequest::Op::Flush;
    req.done = [this, done = std::move(done)](bool ok) {
        if (!ok)
            fail("flush failed (flushes never carry injected faults)");
        if (done)
            done(true);
    };
    _dev.submit(std::move(req));
}

bool
OracleDevice::writeInflight(std::uint64_t block,
                            std::uint32_t nblocks) const
{
    for (std::uint64_t b = block;
         b < block + nblocks && b < _state.size(); ++b) {
        if (_state[b].inflight)
            return true;
    }
    return false;
}

} // namespace bms::fuzz
