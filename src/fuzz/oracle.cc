#include "fuzz/oracle.hh"

#include <algorithm>
#include <cstring>
#include <iostream>
#include <sstream>
#include <utility>

#include "nvme/defs.hh"
#include "sim/check.hh"

namespace bms::fuzz {

namespace {

/** Pattern salt base; xor'd with the oracle uid per word group. */
constexpr std::uint64_t kMagic = 0xb35ee0f5'0c1e0000ULL;
constexpr std::uint32_t kWordsPerBlock = nvme::kBlockSize / 8;

std::uint64_t
mixWord(std::uint32_t uid, std::uint64_t block, std::uint64_t stamp)
{
    std::uint64_t v = (static_cast<std::uint64_t>(uid) << 48) ^ block ^
                      (stamp * 0x9e3779b97f4a7c15ULL);
    v ^= v >> 29;
    return v;
}

} // namespace

OracleDevice::OracleDevice(sim::Simulator &sim, std::string name,
                           host::BlockDeviceIf &dev, host::HostMemory &mem,
                           OpLog &log, Config cfg)
    : SimObject(sim, std::move(name)), _dev(dev), _mem(mem), _log(log),
      _cfg(cfg)
{
    BMS_ASSERT(_cfg.regionBytes >= nvme::kBlockSize,
               "oracle window smaller than one block");
    BMS_ASSERT_EQ(_cfg.regionBytes % nvme::kBlockSize, 0u,
                  "oracle window must be block aligned");
    BMS_ASSERT_EQ(_cfg.baseOffset % nvme::kBlockSize, 0u,
                  "oracle window offset must be block aligned");
    BMS_ASSERT(_cfg.maxIoBytes >= nvme::kBlockSize &&
                   _cfg.maxIoBytes % nvme::kBlockSize == 0,
               "bad oracle maxIoBytes: ", _cfg.maxIoBytes);
    _state.resize(_cfg.regionBytes / nvme::kBlockSize);
}

std::uint32_t
OracleDevice::maxIoBlocks() const
{
    return _cfg.maxIoBytes / nvme::kBlockSize;
}

std::uint64_t
OracleDevice::acquireBuffer()
{
    if (!_bufPool.empty()) {
        std::uint64_t addr = _bufPool.back();
        _bufPool.pop_back();
        return addr;
    }
    // Page alignment matters: chunk-straddling commands are split into
    // extents and require page-aligned PRPs (engine invariant).
    return _mem.alloc(_cfg.maxIoBytes, nvme::kPageSize);
}

void
OracleDevice::releaseBuffer(std::uint64_t addr)
{
    _bufPool.push_back(addr);
}

void
OracleDevice::fillPattern(std::uint8_t *buf, std::uint64_t block,
                          std::uint64_t stamp) const
{
    auto *words = reinterpret_cast<std::uint64_t *>(buf);
    for (std::uint32_t k = 0; k < kWordsPerBlock; k += 4) {
        words[k] = kMagic ^ _cfg.uid;
        words[k + 1] = block;
        words[k + 2] = stamp;
        words[k + 3] = mixWord(_cfg.uid, block, stamp);
    }
}

void
OracleDevice::fail(const std::string &what)
{
    _log.dump(std::cerr);
    BMS_PANIC("fuzz oracle ", name(), ": ", what,
              " [seed=", _cfg.seed, " tick=", now(), "]");
}

std::uint64_t
OracleDevice::verifyBlock(const std::uint8_t *img, std::uint64_t block,
                          const std::vector<StampLife> &valid)
{
    const auto *words = reinterpret_cast<const std::uint64_t *>(img);
    bool all_zero =
        std::all_of(words, words + kWordsPerBlock,
                    [](std::uint64_t w) { return w == 0; });
    std::uint64_t stamp = all_zero ? 0 : words[2];
    // Clone lineages carry parent-written patterns, so the writer's
    // uid is part of the identity: recover it from the salt word and
    // require the exact (uid, stamp) pair to be acceptable.
    std::uint32_t uid =
        all_zero ? 0 : static_cast<std::uint32_t>(words[0] ^ kMagic);
    bool acceptable = std::any_of(
        valid.begin(), valid.end(), [&](const StampLife &l) {
            return all_zero ? l.stamp == 0
                            : (l.stamp == stamp && l.uid == uid);
        });
    if (!acceptable) {
        std::ostringstream os;
        os << "block " << block << " decoded uid " << uid << " stamp "
           << stamp << " not in acceptable set {";
        for (const StampLife &l : valid)
            os << " " << l.uid << ":" << l.stamp;
        os << " }";
        fail(os.str());
    }
    if (all_zero)
        return 0;
    for (std::uint32_t k = 0; k < kWordsPerBlock; k += 4) {
        if (words[k] != (kMagic ^ uid) || words[k + 1] != block ||
            words[k + 2] != stamp ||
            words[k + 3] != mixWord(uid, block, stamp)) {
            std::ostringstream os;
            os << "block " << block << " torn at word " << k
               << ": got {" << std::hex << words[k] << ", " << words[k + 1]
               << ", " << words[k + 2] << ", " << words[k + 3]
               << "}, expected uid " << std::dec << uid << " stamp "
               << stamp;
            fail(os.str());
        }
    }
    return stamp;
}

void
OracleDevice::settleOverwrite(std::uint64_t block, std::uint32_t nblocks,
                              std::uint64_t token, bool ok)
{
    // Oldest in-flight read submit tick: dead stamps no read can
    // observe any more are pruned below.
    sim::Tick prune_before = now();
    for (sim::Tick t : _readSubmits)
        prune_before = std::min(prune_before, t);
    for (std::uint64_t b = block; b < block + nblocks; ++b) {
        BlockState &st = _state[b];
        if (st.inflight == token)
            st.inflight = 0;
        if (ok) {
            // Read-your-writes: every older stamp is dead from here
            // on (the overwrite committed no later than this
            // completion).  A failed op's stamp instead stays alive
            // next to the old ones — it may have partially committed
            // (per-extent splits / per-chunk deallocation).
            for (StampLife &l : st.lives)
                if (l.died == kNever && l.id != token)
                    l.died = now();
        }
        std::erase_if(st.lives, [prune_before](const StampLife &l) {
            return l.died < prune_before;
        });
    }
}

OracleDevice::Lineage
OracleDevice::captureLineage(sim::Tick pin_submit) const
{
    Lineage out(_state.size());
    for (std::size_t b = 0; b < _state.size(); ++b) {
        for (const StampLife &l : _state[b].lives) {
            if (l.died < pin_submit)
                continue;
            StampLife pinned = l;
            // Whichever of these stamps the pin froze, nothing
            // overwrites it on the snapshot chunk: the parent's later
            // writes divert through chunk CoW.  Only the adopting
            // clone's own writes kill inherited entries.
            pinned.died = kNever;
            out[b].push_back(pinned);
        }
        BMS_ASSERT(!out[b].empty(),
                   "lineage capture left block ", b,
                   " with no acceptable stamp");
    }
    return out;
}

void
OracleDevice::adoptLineage(const Lineage &lineage)
{
    BMS_ASSERT_EQ(lineage.size(), _state.size(),
                  "clone window geometry differs from parent");
    BMS_ASSERT(_writes == 0 && _reads == 0 && _trims == 0,
               "lineage must be adopted before any I/O");
    for (std::size_t b = 0; b < _state.size(); ++b)
        _state[b].lives = lineage[b];
}

void
OracleDevice::write(std::uint64_t block, std::uint32_t nblocks,
                    std::function<void(bool)> done)
{
    BMS_ASSERT(nblocks > 0 && nblocks <= maxIoBlocks(),
               "oracle write size out of range: ", nblocks);
    BMS_ASSERT_LE(block + nblocks, blocks(), "oracle write out of window");
    std::uint64_t stamp = ++_nextStamp;
    for (std::uint64_t b = block; b < block + nblocks; ++b) {
        BMS_ASSERT_EQ(_state[b].inflight, 0u,
                      "overlapping in-flight writes on block ", b,
                      " (generator bug)");
        _state[b].inflight = stamp;
        // The stamp's data may land on media any time from now on.
        _state[b].lives.push_back(
            StampLife{stamp, stamp, _cfg.uid, now(), kNever});
    }
    std::uint32_t len = nblocks * nvme::kBlockSize;
    std::uint64_t buf = acquireBuffer();
    std::vector<std::uint8_t> img(len);
    for (std::uint32_t i = 0; i < nblocks; ++i)
        fillPattern(img.data() + i * nvme::kBlockSize, block + i, stamp);
    _mem.write(buf, len, img.data());

    bool faulty_at_submit = _faultsActive;
    ++_writes;
    _log.record(now(), name() + " write  blk=" + std::to_string(block) +
                           "+" + std::to_string(nblocks) +
                           " stamp=" + std::to_string(stamp));

    host::BlockRequest req;
    req.op = host::BlockRequest::Op::Write;
    req.offset = _cfg.baseOffset + block * nvme::kBlockSize;
    req.len = len;
    req.dataAddr = buf;
    req.done = [this, block, nblocks, stamp, buf, faulty_at_submit,
                done = std::move(done)](bool ok) {
        releaseBuffer(buf);
        settleOverwrite(block, nblocks, stamp, ok);
        if (!ok) {
            if (!faulty_at_submit && !_faultsActive)
                fail("write stamp=" + std::to_string(stamp) +
                     " blk=" + std::to_string(block) + "+" +
                     std::to_string(nblocks) +
                     " failed with no fault injection active");
            ++_excusedErrors;
            _log.record(now(), name() + " write-FAILED(excused) stamp=" +
                                   std::to_string(stamp));
        }
        if (done)
            done(ok);
    };
    _dev.submit(std::move(req));
}

void
OracleDevice::trim(std::uint64_t block, std::uint32_t nblocks,
                   std::function<void(bool)> done)
{
    BMS_ASSERT(nblocks > 0 && nblocks <= maxIoBlocks(),
               "oracle trim size out of range: ", nblocks);
    BMS_ASSERT_LE(block + nblocks, blocks(), "oracle trim out of window");
    // A trim is a concurrent zero write: unique op token for the
    // overwrite-kill rule, but the life it adds is the zero image.
    std::uint64_t token = ++_nextStamp;
    for (std::uint64_t b = block; b < block + nblocks; ++b) {
        BMS_ASSERT_EQ(_state[b].inflight, 0u,
                      "trim overlapping an in-flight op on block ", b,
                      " (generator bug)");
        _state[b].inflight = token;
        // The zeroes may land on media any time from now on.
        _state[b].lives.push_back(StampLife{token, 0, 0, now(), kNever});
    }
    bool faulty_at_submit = _faultsActive;
    ++_trims;
    _log.record(now(), name() + " trim   blk=" + std::to_string(block) +
                           "+" + std::to_string(nblocks));

    host::BlockRequest req;
    req.op = host::BlockRequest::Op::Discard;
    req.offset = _cfg.baseOffset + block * nvme::kBlockSize;
    req.len = nblocks * nvme::kBlockSize;
    req.done = [this, block, nblocks, token, faulty_at_submit,
                done = std::move(done)](bool ok) {
        // Lenient on failure: the engine deallocates chunk-by-chunk,
        // so a failed DSM may still have freed or scrubbed a prefix —
        // the zero life stays alive NEXT TO the old stamps instead of
        // killing them.
        settleOverwrite(block, nblocks, token, ok);
        if (!ok) {
            if (!faulty_at_submit && !_faultsActive)
                fail("trim blk=" + std::to_string(block) + "+" +
                     std::to_string(nblocks) +
                     " failed with no fault injection active");
            ++_excusedErrors;
            _log.record(now(), name() + " trim-FAILED(excused) blk=" +
                                   std::to_string(block));
        }
        if (done)
            done(ok);
    };
    _dev.submit(std::move(req));
}

void
OracleDevice::read(std::uint64_t block, std::uint32_t nblocks,
                   std::function<void(bool)> done)
{
    BMS_ASSERT(nblocks > 0 && nblocks <= maxIoBlocks(),
               "oracle read size out of range: ", nblocks);
    BMS_ASSERT_LE(block + nblocks, blocks(), "oracle read out of window");
    std::uint32_t len = nblocks * nvme::kBlockSize;
    std::uint64_t buf = acquireBuffer();
    bool faulty_at_submit = _faultsActive;
    sim::Tick submitted = now();
    _readSubmits.push_back(submitted);
    ++_reads;
    _log.record(now(), name() + " read   blk=" + std::to_string(block) +
                           "+" + std::to_string(nblocks));

    host::BlockRequest req;
    req.op = host::BlockRequest::Op::Read;
    req.offset = _cfg.baseOffset + block * nvme::kBlockSize;
    req.len = len;
    req.dataAddr = buf;
    req.done = [this, block, nblocks, len, buf, submitted, faulty_at_submit,
                done = std::move(done)](bool ok) {
        auto it = std::find(_readSubmits.begin(), _readSubmits.end(),
                            submitted);
        BMS_ASSERT(it != _readSubmits.end(), "read submit tick lost");
        _readSubmits.erase(it);
        if (!ok) {
            releaseBuffer(buf);
            if (!faulty_at_submit && !_faultsActive)
                fail("read blk=" + std::to_string(block) + "+" +
                     std::to_string(nblocks) +
                     " failed with no fault injection active");
            ++_excusedErrors;
            _log.record(now(), name() + " read-FAILED(excused) blk=" +
                                   std::to_string(block));
            if (done)
                done(false);
            return;
        }
        std::vector<std::uint8_t> img(len);
        _mem.read(buf, len, img.data());
        releaseBuffer(buf);
        for (std::uint32_t i = 0; i < nblocks; ++i) {
            std::uint64_t b = block + i;
            // Legal stamps: lifetime overlaps this read's flight.
            // (born <= now() holds for every recorded entry, so only
            // the death side needs checking.)
            std::vector<StampLife> valid;
            for (const StampLife &l : _state[b].lives)
                if (l.died >= submitted)
                    valid.push_back(l);
            verifyBlock(img.data() + i * nvme::kBlockSize, b, valid);
            ++_verifiedBlocks;
        }
        if (done)
            done(true);
    };
    _dev.submit(std::move(req));
}

void
OracleDevice::flush(std::function<void(bool)> done)
{
    ++_flushes;
    _log.record(now(), name() + " flush");
    host::BlockRequest req;
    req.op = host::BlockRequest::Op::Flush;
    req.done = [this, done = std::move(done)](bool ok) {
        if (!ok)
            fail("flush failed (flushes never carry injected faults)");
        if (done)
            done(true);
    };
    _dev.submit(std::move(req));
}

bool
OracleDevice::writeInflight(std::uint64_t block,
                            std::uint32_t nblocks) const
{
    for (std::uint64_t b = block;
         b < block + nblocks && b < _state.size(); ++b) {
        if (_state[b].inflight)
            return true;
    }
    return false;
}

} // namespace bms::fuzz
