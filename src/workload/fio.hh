/**
 * @file
 * fio-like synthetic workload engine (closed loop, libaio style).
 *
 * Reproduces the paper's Table IV test cases: N jobs, each keeping
 * `iodepth` requests in flight against a block device, random or
 * sequential, read or write, fixed block size. Latency is measured
 * submit → completion; a ramp period is discarded.
 */

#ifndef BMS_WORKLOAD_FIO_HH
#define BMS_WORKLOAD_FIO_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "host/block.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace bms::workload {

/** Access pattern of a job. */
enum class FioPattern
{
    RandRead,
    RandWrite,
    SeqRead,
    SeqWrite,
    RandRw, ///< mixed, readRatio controls the split
};

/** One fio invocation (all jobs share the spec). */
struct FioJobSpec
{
    FioPattern pattern = FioPattern::RandRead;
    std::uint32_t blockSize = 4096;
    int iodepth = 1;
    int numjobs = 4;
    double readRatio = 0.7; ///< RandRw only
    /** Restrict I/O to the first regionBytes of the device (0 = all). */
    std::uint64_t regionBytes = 0;
    sim::Tick rampTime = sim::milliseconds(20);
    sim::Tick runTime = sim::milliseconds(400);

    std::string caseName; ///< e.g. "rand-r-1" for table printing
};

/** @name The paper's Table IV cases. */
/// @{
FioJobSpec fioRandR1();
FioJobSpec fioRandR128();
FioJobSpec fioRandW1();
FioJobSpec fioRandW16();
FioJobSpec fioSeqR256();
FioJobSpec fioSeqW256();
/** All six, in the paper's order. */
std::vector<FioJobSpec> fioTableIv();
/// @}

/** Measured results of one fio run. */
struct FioResult
{
    std::string caseName;
    double iops = 0.0;
    double mbPerSec = 0.0;
    sim::LatencyHistogram latency;
    std::uint64_t completed = 0;
    std::uint64_t errors = 0;

    double avgLatencyUs() const { return latency.mean() / 1e3; }
};

/** Closed-loop runner driving one block device. */
class FioRunner : public sim::SimObject
{
  public:
    FioRunner(sim::Simulator &sim, std::string name,
              host::BlockDeviceIf &dev, FioJobSpec spec);

    /**
     * Start issuing I/O. @p done fires once the run time has elapsed
     * and every outstanding request has drained.
     */
    void start(std::function<void()> done = nullptr);

    /** Valid after the run completes (or mid-run for live rates). */
    const FioResult &result() const { return _result; }

    bool finished() const { return _finished; }

    /**
     * Optional hook invoked at each completion during the measured
     * window (timeline recording for Fig. 15).
     */
    std::function<void(sim::Tick now, std::uint32_t bytes)> onCompletion;

  private:
    struct Job
    {
        int index = 0;
        std::uint64_t nextSeq = 0; ///< sequential cursor (blocks)
        std::uint64_t regionStart = 0;
        std::uint64_t regionBlocks = 0;
        std::uint32_t outstanding = 0;
    };

    void issue(Job &job);
    void onDone(Job &job, sim::Tick submitted, bool ok);
    std::uint64_t pickOffset(Job &job);
    bool isRead(Job &job);

    host::BlockDeviceIf &_dev;
    FioJobSpec _spec;
    std::vector<Job> _jobs;
    sim::Rng _rng;

    bool _running = false;
    bool _stopping = false;
    bool _finished = false;
    sim::Tick _measureStart = 0;
    sim::Tick _measureEnd = 0;
    std::uint32_t _outstandingTotal = 0;
    std::uint64_t _measuredOps = 0;
    std::uint64_t _measuredBytes = 0;
    FioResult _result;
    std::function<void()> _done;
};

} // namespace bms::workload

#endif // BMS_WORKLOAD_FIO_HH
