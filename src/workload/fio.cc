#include "workload/fio.hh"


#include "nvme/defs.hh"

namespace bms::workload {

namespace {

FioJobSpec
makeSpec(FioPattern pattern, std::uint32_t bs, int qd, int jobs,
         const char *name)
{
    FioJobSpec s;
    s.pattern = pattern;
    s.blockSize = bs;
    s.iodepth = qd;
    s.numjobs = jobs;
    s.caseName = name;
    return s;
}

} // namespace

FioJobSpec
fioRandR1()
{
    return makeSpec(FioPattern::RandRead, 4096, 1, 4, "rand-r-1");
}

FioJobSpec
fioRandR128()
{
    return makeSpec(FioPattern::RandRead, 4096, 128, 4, "rand-r-128");
}

FioJobSpec
fioRandW1()
{
    return makeSpec(FioPattern::RandWrite, 4096, 1, 4, "rand-w-1");
}

FioJobSpec
fioRandW16()
{
    return makeSpec(FioPattern::RandWrite, 4096, 16, 4, "rand-w-16");
}

FioJobSpec
fioSeqR256()
{
    return makeSpec(FioPattern::SeqRead, 128 * 1024, 256, 4, "seq-r-256");
}

FioJobSpec
fioSeqW256()
{
    return makeSpec(FioPattern::SeqWrite, 128 * 1024, 256, 4, "seq-w-256");
}

std::vector<FioJobSpec>
fioTableIv()
{
    return {fioRandR1(), fioRandR128(), fioRandW1(),
            fioRandW16(), fioSeqR256(), fioSeqW256()};
}

FioRunner::FioRunner(sim::Simulator &sim, std::string name,
                     host::BlockDeviceIf &dev, FioJobSpec spec)
    : SimObject(sim, std::move(name)),
      _dev(dev),
      _spec(spec),
      _rng(sim.rng().fork())
{
    BMS_ASSERT(_spec.numjobs >= 1 && _spec.iodepth >= 1,
               "fio spec needs at least one job and queue slot");
    _result.caseName = _spec.caseName;
}

void
FioRunner::start(std::function<void()> done)
{
    BMS_ASSERT(!_running, "fio runner started twice");
    // Validate the spec before any I/O is generated: a malformed spec
    // must fail loudly here, not silently misbehave (e.g. a readRatio
    // of 1.3 would quietly become an all-read workload, an unaligned
    // blockSize would panic deep inside the NVMe driver instead).
    BMS_ASSERT(_spec.iodepth >= 1, "fio spec: iodepth must be >= 1, got ",
               _spec.iodepth);
    BMS_ASSERT(_spec.numjobs >= 1, "fio spec: numjobs must be >= 1, got ",
               _spec.numjobs);
    BMS_ASSERT(_spec.blockSize > 0 && _spec.blockSize % 512 == 0,
               "fio spec: blockSize must be a nonzero multiple of 512, "
               "got ", _spec.blockSize);
    BMS_ASSERT(_spec.readRatio >= 0.0 && _spec.readRatio <= 1.0,
               "fio spec: readRatio must be in [0, 1], got ",
               _spec.readRatio);
    _done = std::move(done);
    _running = true;

    std::uint64_t region = _spec.regionBytes ? _spec.regionBytes
                                             : _dev.capacityBytes();
    std::uint64_t region_blocks = region / _spec.blockSize;
    BMS_ASSERT(region_blocks >= static_cast<std::uint64_t>(_spec.numjobs),
               "region too small for job count");

    // Jobs carve the region into equal slices, like fio files.
    std::uint64_t per_job = region_blocks / _spec.numjobs;
    _jobs.resize(static_cast<std::size_t>(_spec.numjobs));
    for (int j = 0; j < _spec.numjobs; ++j) {
        Job &job = _jobs[static_cast<std::size_t>(j)];
        job.index = j;
        job.regionStart = static_cast<std::uint64_t>(j) * per_job;
        job.regionBlocks = per_job;
        job.nextSeq = 0;
    }

    _measureStart = now() + _spec.rampTime;
    _measureEnd = _measureStart + _spec.runTime;
    schedule(_spec.rampTime + _spec.runTime, [this] {
        _stopping = true;
        if (_outstandingTotal == 0) {
            _finished = true;
            if (_done)
                _done();
        }
    });

    for (auto &job : _jobs) {
        for (int d = 0; d < _spec.iodepth; ++d)
            issue(job);
    }
}

bool
FioRunner::isRead(Job &job)
{
    (void)job;
    switch (_spec.pattern) {
      case FioPattern::RandRead:
      case FioPattern::SeqRead:
        return true;
      case FioPattern::RandWrite:
      case FioPattern::SeqWrite:
        return false;
      case FioPattern::RandRw:
        return _rng.chance(_spec.readRatio);
    }
    return true;
}

std::uint64_t
FioRunner::pickOffset(Job &job)
{
    std::uint64_t block;
    switch (_spec.pattern) {
      case FioPattern::SeqRead:
      case FioPattern::SeqWrite:
        block = job.nextSeq;
        job.nextSeq = (job.nextSeq + 1) % job.regionBlocks;
        break;
      default:
        block = _rng.uniformInt(0, job.regionBlocks - 1);
        break;
    }
    return (job.regionStart + block) * _spec.blockSize;
}

void
FioRunner::issue(Job &job)
{
    if (_stopping)
        return;
    host::BlockRequest req;
    req.op = isRead(job) ? host::BlockRequest::Op::Read
                         : host::BlockRequest::Op::Write;
    req.offset = pickOffset(job);
    req.len = _spec.blockSize;
    req.queueHint = job.index;
    sim::Tick submitted = now();
    Job *jp = &job;
    req.done = [this, jp, submitted](bool ok) {
        onDone(*jp, submitted, ok);
    };
    ++job.outstanding;
    ++_outstandingTotal;
    _dev.submit(std::move(req));
}

void
FioRunner::onDone(Job &job, sim::Tick submitted, bool ok)
{
    --job.outstanding;
    --_outstandingTotal;
    if (!ok)
        ++_result.errors;

    if (now() >= _measureStart && now() <= _measureEnd) {
        _result.latency.add(now() - submitted);
        ++_measuredOps;
        _measuredBytes += _spec.blockSize;
        if (onCompletion)
            onCompletion(now(), _spec.blockSize);
    }

    if (_stopping) {
        if (_outstandingTotal == 0 && !_finished) {
            double secs = sim::toSec(_spec.runTime);
            _result.iops = static_cast<double>(_measuredOps) / secs;
            _result.mbPerSec =
                static_cast<double>(_measuredBytes) / 1e6 / secs;
            _result.completed = _measuredOps;
            _finished = true;
            if (_done)
                _done();
        }
        return;
    }
    issue(job);
}

} // namespace bms::workload
