#include "workload/trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace bms::workload {

std::uint64_t
Trace::totalBytes() const
{
    std::uint64_t total = 0;
    for (const TraceEntry &e : _entries)
        total += e.len;
    return total;
}

namespace {

char
opCode(host::BlockRequest::Op op)
{
    switch (op) {
      case host::BlockRequest::Op::Read:
        return 'R';
      case host::BlockRequest::Op::Write:
        return 'W';
      case host::BlockRequest::Op::Flush:
        return 'F';
      case host::BlockRequest::Op::Discard:
        return 'D';
    }
    return '?';
}

bool
opFromCode(char c, host::BlockRequest::Op &out)
{
    switch (c) {
      case 'R':
        out = host::BlockRequest::Op::Read;
        return true;
      case 'W':
        out = host::BlockRequest::Op::Write;
        return true;
      case 'F':
        out = host::BlockRequest::Op::Flush;
        return true;
      case 'D':
        out = host::BlockRequest::Op::Discard;
        return true;
      default:
        return false;
    }
}

} // namespace

bool
Trace::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "# bms block trace v1: when_ns op offset len hint\n");
    for (const TraceEntry &e : _entries) {
        std::fprintf(f, "%" PRIu64 " %c %" PRIu64 " %" PRIu32 " %d\n",
                     e.when, opCode(e.op), e.offset, e.len, e.queueHint);
    }
    std::fclose(f);
    return true;
}

bool
Trace::load(const std::string &path, Trace &out)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    out = Trace{};
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
        if (line[0] == '#' || line[0] == '\n')
            continue;
        TraceEntry e;
        char op = 0;
        if (std::sscanf(line, "%" SCNu64 " %c %" SCNu64 " %" SCNu32 " %d",
                        &e.when, &op, &e.offset, &e.len,
                        &e.queueHint) != 5 ||
            !opFromCode(op, e.op)) {
            std::fclose(f);
            return false;
        }
        out.append(e);
    }
    std::fclose(f);
    return true;
}

void
TraceReplayer::start(std::function<void()> done)
{
    _done = std::move(done);
    if (_trace.empty()) {
        _finished = true;
        if (_done)
            _done();
        return;
    }
    for (const TraceEntry &e : _trace.entries()) {
        auto when = static_cast<sim::Tick>(
            static_cast<double>(e.when) * _scale);
        schedule(when, [this, e] {
            host::BlockRequest req;
            req.op = e.op;
            req.offset = e.offset;
            req.len = e.len;
            req.queueHint = e.queueHint;
            sim::Tick submitted = now();
            ++_outstanding;
            req.done = [this, submitted](bool ok) {
                --_outstanding;
                ++_result.completed;
                if (!ok)
                    ++_result.errors;
                _result.latency.add(now() - submitted);
                if (_allSubmitted && _outstanding == 0 && !_finished) {
                    _finished = true;
                    if (_done)
                        _done();
                }
            };
            _dev.submit(std::move(req));
        });
    }
    // Mark the end of the schedule; the last completion finishes us.
    // (Traces are usually time-sorted, but tolerate any order.)
    sim::Tick last = 0;
    for (const TraceEntry &e : _trace.entries())
        last = std::max(last, e.when);
    last = static_cast<sim::Tick>(static_cast<double>(last) * _scale);
    schedule(last, [this] { _allSubmitted = true; });
}

} // namespace bms::workload
