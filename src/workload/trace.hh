/**
 * @file
 * Block-level trace capture and replay.
 *
 * Production storage evaluation lives on traces: record what an
 * application (or a whole tenant) did, then replay it open-loop
 * against a different configuration. TraceRecorder wraps any
 * BlockDeviceIf transparently; TraceReplayer re-issues the recorded
 * requests at their recorded times (optionally time-scaled) and
 * measures the latency distribution the new target delivers.
 */

#ifndef BMS_WORKLOAD_TRACE_HH
#define BMS_WORKLOAD_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "host/block.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace bms::workload {

/** One recorded request. */
struct TraceEntry
{
    sim::Tick when = 0; ///< submission time relative to trace start
    host::BlockRequest::Op op = host::BlockRequest::Op::Read;
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    int queueHint = -1;

    bool operator==(const TraceEntry &) const = default;
};

/** An ordered capture of block traffic. */
class Trace
{
  public:
    void
    append(TraceEntry e)
    {
        _entries.push_back(e);
    }

    const std::vector<TraceEntry> &entries() const { return _entries; }
    std::size_t size() const { return _entries.size(); }
    bool empty() const { return _entries.empty(); }

    /** Total bytes moved (reads + writes). */
    std::uint64_t totalBytes() const;

    /** Save as a text file, one request per line. */
    bool save(const std::string &path) const;

    /** Load a trace saved by save(). Returns nullopt-like empty
     *  trace + false on parse failure. */
    static bool load(const std::string &path, Trace &out);

  private:
    std::vector<TraceEntry> _entries;
};

/** Transparent recording wrapper around any block device. */
class TraceRecorder : public sim::SimObject, public host::BlockDeviceIf
{
  public:
    TraceRecorder(sim::Simulator &sim, std::string name,
                  host::BlockDeviceIf &base)
        : SimObject(sim, std::move(name)), _base(base), _start(sim.now())
    {}

    void
    submit(host::BlockRequest req) override
    {
        _trace.append(TraceEntry{now() - _start, req.op, req.offset,
                                 req.len, req.queueHint});
        _base.submit(std::move(req));
    }

    std::uint64_t capacityBytes() const override
    {
        return _base.capacityBytes();
    }

    const Trace &trace() const { return _trace; }

  private:
    host::BlockDeviceIf &_base;
    sim::Tick _start;
    Trace _trace;
};

/** Open-loop replay of a trace against a target device. */
class TraceReplayer : public sim::SimObject
{
  public:
    struct Result
    {
        std::uint64_t completed = 0;
        std::uint64_t errors = 0;
        sim::LatencyHistogram latency;
        /** Requests whose submission slipped past their recorded
         *  time because the previous ones were still queueing is not
         *  tracked — open-loop replay always submits on schedule. */
    };

    /**
     * @param time_scale stretch (>1) or compress (<1) the recorded
     *        inter-arrival times.
     */
    TraceReplayer(sim::Simulator &sim, std::string name,
                  host::BlockDeviceIf &dev, Trace trace,
                  double time_scale = 1.0)
        : SimObject(sim, std::move(name)),
          _dev(dev),
          _trace(std::move(trace)),
          _scale(time_scale)
    {}

    /** Schedule every request; @p done fires when all complete. */
    void start(std::function<void()> done = nullptr);

    bool finished() const { return _finished; }
    const Result &result() const { return _result; }

  private:
    host::BlockDeviceIf &_dev;
    Trace _trace;
    double _scale;
    std::uint64_t _outstanding = 0;
    bool _allSubmitted = false;
    bool _finished = false;
    Result _result;
    std::function<void()> _done;
};

} // namespace bms::workload

#endif // BMS_WORKLOAD_TRACE_HH
