#include "ssd/hdd_model.hh"

#include <cmath>
#include <utility>

namespace bms::ssd {

HddMediaModel::HddMediaModel(sim::Simulator &sim, std::string name,
                             const HddProfile &profile)
    : SimObject(sim, std::move(name)), _profile(profile)
{
}

sim::Tick
HddMediaModel::positionCost(std::uint64_t offset)
{
    if (offset == _headPos) {
        ++_seqHits;
        return 0; // streaming: head already positioned
    }
    ++_seeks;
    // Seek time grows with the square root of the stroke distance
    // (classic disk model), plus rotational latency sampled uniform
    // over one revolution.
    double dist = offset > _headPos
                      ? static_cast<double>(offset - _headPos)
                      : static_cast<double>(_headPos - offset);
    double frac = std::sqrt(dist / static_cast<double>(
                                       _profile.capacityBytes));
    auto seek = static_cast<sim::Tick>(
        static_cast<double>(_profile.seekMin) +
        frac * static_cast<double>(_profile.seekMax - _profile.seekMin));
    sim::Tick rotation = static_cast<sim::Tick>(
        sim().rng().uniformDouble(
            0.0, static_cast<double>(_profile.rotationPeriod)));
    return seek + rotation;
}

void
HddMediaModel::access(std::uint64_t offset, std::uint64_t bytes,
                      bool is_write, std::function<void()> done)
{
    // Single actuator: strictly one command at a time, FIFO.
    sim::Tick start = now() > _actuatorBusy ? now() : _actuatorBusy;
    sim::Tick service =
        positionCost(offset) + _profile.mediaBw.delayFor(bytes);
    _actuatorBusy = start + service;
    _headPos = offset + bytes;
    sim().scheduleAt(_actuatorBusy,
                     [this, is_write, bytes, done = std::move(done)] {
                         if (is_write) {
                             // Cache drains once the platter write
                             // lands.
                             _cacheFill = _cacheFill > bytes
                                              ? _cacheFill - bytes
                                              : 0;
                         }
                         done();
                     });
}

void
HddMediaModel::read(std::uint64_t offset, std::uint64_t bytes,
                    std::function<void()> done)
{
    access(offset, bytes, false, std::move(done));
}

void
HddMediaModel::write(std::uint64_t offset, std::uint64_t bytes,
                     std::function<void()> done)
{
    // Small writes land in the on-board cache when it has room; the
    // media work is still queued on the actuator (write-back).
    if (_cacheFill + bytes <= _profile.writeCacheBytes) {
        _cacheFill += bytes;
        sim::Tick ack = now() + _profile.writeCacheLatency;
        access(offset, bytes, true, [] {});
        sim().scheduleAt(ack, [done = std::move(done)] { done(); });
        return;
    }
    access(offset, bytes, true, std::move(done));
}

void
HddMediaModel::flush(std::function<void()> done)
{
    // Wait for the actuator to drain everything queued so far.
    sim::Tick t = now() > _actuatorBusy ? now() : _actuatorBusy;
    _cacheFill = 0;
    sim().scheduleAt(t + sim::microseconds(100),
                     [done = std::move(done)] { done(); });
}

} // namespace bms::ssd
