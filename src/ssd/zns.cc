#include "ssd/zns.hh"

#include <cstring>

namespace bms::ssd {

using nvme::IoOpcode;
using nvme::Sqe;
using nvme::Status;

ZnsSsd::ZnsSsd(sim::Simulator &sim, std::string name, Config cfg)
    : SimObject(sim, name), _cfg(cfg)
{
    nvme::ControllerModel::Config ctrl_cfg;
    ctrl_cfg.fn = 0;
    ctrl_cfg.model = "BMS-ZNS-SIM";
    _ctrl = std::make_unique<Controller>(sim, name + ".ctrl", ctrl_cfg,
                                         *this);
    _media = std::make_unique<MediaModel>(sim, name + ".media",
                                          _cfg.profile.media);
    _zoneBlocks = _cfg.profile.zoneBytes / nvme::kBlockSize;
    std::uint64_t zones =
        _cfg.profile.media.capacityBytes / _cfg.profile.zoneBytes;
    _zones.resize(zones);

    nvme::NamespaceInfo ns;
    ns.nsid = 1;
    ns.sizeBlocks = zones * _zoneBlocks;
    _ctrl->addNamespace(ns);
}

void
ZnsSsd::mmioWrite(pcie::FunctionId fn, std::uint64_t offset,
                  std::uint64_t value)
{
    BMS_ASSERT_EQ(fn, 0, "ZNS SSD is single-function");
    _ctrl->regWrite(offset, value);
}

std::uint64_t
ZnsSsd::mmioRead(pcie::FunctionId fn, std::uint64_t offset)
{
    BMS_ASSERT_EQ(fn, 0, "ZNS SSD is single-function");
    return _ctrl->regRead(offset);
}

void
ZnsSsd::attached(pcie::PcieUpstreamIf &upstream)
{
    _up = &upstream;
    _ctrl->setUpstream(&upstream);
}

ZoneState
ZnsSsd::zoneState(std::uint64_t zone) const
{
    return _zones.at(zone).state;
}

std::uint64_t
ZnsSsd::writePointer(std::uint64_t zone) const
{
    return zone * _zoneBlocks + _zones.at(zone).wp;
}

void
ZnsSsd::completeZns(std::uint16_t sqid, std::uint16_t cid, ZnsStatus st)
{
    _ctrl->complete(sqid, cid, static_cast<Status>(st));
}

void
ZnsSsd::executeIo(const Sqe &sqe, std::uint16_t sqid)
{
    switch (sqe.opcode) {
      case static_cast<std::uint8_t>(IoOpcode::Read):
        doRead(sqe, sqid);
        return;
      case static_cast<std::uint8_t>(IoOpcode::Write):
        doWrite(sqe, sqid, /*is_append=*/false);
        return;
      case kOpZoneAppend:
        doWrite(sqe, sqid, /*is_append=*/true);
        return;
      case kOpZoneMgmtSend:
        doZoneMgmtSend(sqe, sqid);
        return;
      case kOpZoneMgmtRecv:
        doZoneMgmtRecv(sqe, sqid);
        return;
      case static_cast<std::uint8_t>(IoOpcode::Flush):
        _media->flush([this, sqe, sqid] {
            _ctrl->complete(sqid, sqe.cid, Status::Success);
        });
        return;
      default:
        _ctrl->complete(sqid, sqe.cid, Status::InvalidOpcode);
        return;
    }
}

void
ZnsSsd::doRead(const Sqe &sqe, std::uint16_t sqid)
{
    std::uint64_t end = sqe.slba() + sqe.nlb();
    if (end > _zones.size() * _zoneBlocks) {
        _ctrl->complete(sqid, sqe.cid, Status::LbaOutOfRange);
        return;
    }
    // Reads may not cross a zone boundary (spec default).
    if (sqe.slba() / _zoneBlocks != (end - 1) / _zoneBlocks) {
        completeZns(sqid, sqe.cid, ZnsStatus::ZoneBoundaryError);
        return;
    }
    std::uint64_t len = sqe.dataBytes();
    std::uint64_t off = sqe.slba() * nvme::kBlockSize;
    _media->read(off, len, [this, sqe, sqid, len, off] {
        std::shared_ptr<std::vector<std::uint8_t>> data;
        const std::uint8_t *ptr = nullptr;
        if (_cfg.functionalData) {
            data = std::make_shared<std::vector<std::uint8_t>>(len);
            _flash.read(off, len, data->data());
            ptr = data->data();
        }
        _up->dmaWrite(sqe.prp1, static_cast<std::uint32_t>(len), ptr,
                      [this, sqe, sqid, data] {
                          _ctrl->complete(sqid, sqe.cid,
                                          Status::Success);
                      });
    });
}

bool
ZnsSsd::openZone(Zone &z, bool explicit_open)
{
    if (z.state == ZoneState::ImplicitlyOpen ||
        z.state == ZoneState::ExplicitlyOpen) {
        return true;
    }
    if (_openZones >= _cfg.profile.maxOpenZones)
        return false;
    bool was_active =
        z.state == ZoneState::Closed; // already counted active
    if (!was_active) {
        if (_activeZones >= _cfg.profile.maxActiveZones)
            return false;
        ++_activeZones;
    }
    ++_openZones;
    z.state = explicit_open ? ZoneState::ExplicitlyOpen
                            : ZoneState::ImplicitlyOpen;
    return true;
}

void
ZnsSsd::closeZone(Zone &z)
{
    if (z.state == ZoneState::ImplicitlyOpen ||
        z.state == ZoneState::ExplicitlyOpen) {
        --_openZones;
        z.state = ZoneState::Closed; // stays active
    }
}

void
ZnsSsd::finishZone(Zone &z)
{
    if (z.state == ZoneState::ImplicitlyOpen ||
        z.state == ZoneState::ExplicitlyOpen) {
        --_openZones;
        --_activeZones;
    } else if (z.state == ZoneState::Closed) {
        --_activeZones;
    }
    z.state = ZoneState::Full;
    z.wp = _zoneBlocks;
}

void
ZnsSsd::resetZone(std::uint64_t zone_idx)
{
    Zone &z = _zones[zone_idx];
    if (z.state == ZoneState::ImplicitlyOpen ||
        z.state == ZoneState::ExplicitlyOpen) {
        --_openZones;
        --_activeZones;
    } else if (z.state == ZoneState::Closed) {
        --_activeZones;
    }
    z.state = ZoneState::Empty;
    z.wp = 0;
    // A reset zone's previous contents are gone.
    if (_cfg.functionalData) {
        _flash.clearRange(zone_idx * _zoneBlocks * nvme::kBlockSize,
                          _zoneBlocks * nvme::kBlockSize);
    }
}

void
ZnsSsd::doWrite(const Sqe &sqe, std::uint16_t sqid, bool is_append)
{
    std::uint64_t slba = sqe.slba();
    std::uint32_t blocks = sqe.nlb();
    if (slba + blocks > _zones.size() * _zoneBlocks) {
        _ctrl->complete(sqid, sqe.cid, Status::LbaOutOfRange);
        return;
    }
    std::uint64_t zone_idx = slba / _zoneBlocks;
    Zone &z = _zones[zone_idx];

    if (is_append) {
        // Zone Append: slba must name the zone start; the device
        // assigns the actual LBA (returned in CQE dw0).
        if (slba % _zoneBlocks != 0) {
            completeZns(sqid, sqe.cid, ZnsStatus::ZoneInvalidWrite);
            return;
        }
    } else if (slba != zone_idx * _zoneBlocks + z.wp) {
        // Regular writes must land exactly on the write pointer.
        completeZns(sqid, sqe.cid, ZnsStatus::ZoneInvalidWrite);
        return;
    }
    if (z.state == ZoneState::Full ||
        z.wp + blocks > _zoneBlocks) {
        completeZns(sqid, sqe.cid,
                    z.state == ZoneState::Full
                        ? ZnsStatus::ZoneIsFull
                        : ZnsStatus::ZoneBoundaryError);
        return;
    }
    if (!openZone(z, /*explicit_open=*/false)) {
        completeZns(sqid, sqe.cid, ZnsStatus::TooManyOpenZones);
        return;
    }

    std::uint64_t assigned = zone_idx * _zoneBlocks + z.wp;
    z.wp += blocks;
    if (z.wp == _zoneBlocks)
        finishZone(z);

    std::uint64_t len = static_cast<std::uint64_t>(blocks) *
                        nvme::kBlockSize;
    std::uint64_t off = assigned * nvme::kBlockSize;
    // Fetch the payload, commit to media, complete (dw0 = assigned
    // LBA for appends).
    std::shared_ptr<std::vector<std::uint8_t>> data;
    std::uint8_t *ptr = nullptr;
    if (_cfg.functionalData) {
        data = std::make_shared<std::vector<std::uint8_t>>(len);
        ptr = data->data();
    }
    _up->dmaRead(sqe.prp1, static_cast<std::uint32_t>(len), ptr,
                 [this, sqe, sqid, len, off, assigned, is_append,
                  data] {
                     if (data)
                         _flash.write(off, static_cast<std::uint32_t>(len),
                                      data->data());
                     _media->write(off, len, [this, sqe, sqid, assigned,
                                              is_append] {
                         _ctrl->complete(
                             sqid, sqe.cid, Status::Success,
                             is_append
                                 ? static_cast<std::uint32_t>(assigned)
                                 : 0);
                     });
                 });
}

void
ZnsSsd::doZoneMgmtSend(const Sqe &sqe, std::uint16_t sqid)
{
    std::uint64_t zone_idx = sqe.slba() / _zoneBlocks;
    if (zone_idx >= _zones.size()) {
        _ctrl->complete(sqid, sqe.cid, Status::LbaOutOfRange);
        return;
    }
    auto action = static_cast<ZoneAction>(sqe.cdw13 & 0xff);
    Zone &z = _zones[zone_idx];
    switch (action) {
      case ZoneAction::Reset:
        resetZone(zone_idx);
        break;
      case ZoneAction::Open:
        if (!openZone(z, /*explicit_open=*/true)) {
            completeZns(sqid, sqe.cid, ZnsStatus::TooManyOpenZones);
            return;
        }
        break;
      case ZoneAction::Close:
        closeZone(z);
        break;
      case ZoneAction::Finish:
        finishZone(z);
        break;
      default:
        _ctrl->complete(sqid, sqe.cid, Status::InvalidField);
        return;
    }
    _ctrl->complete(sqid, sqe.cid, Status::Success);
}

void
ZnsSsd::doZoneMgmtRecv(const Sqe &sqe, std::uint16_t sqid)
{
    // Report Zones: 64-byte descriptors starting at the zone that
    // contains SLBA, as many as fit the (single-page) buffer.
    std::uint64_t first = sqe.slba() / _zoneBlocks;
    if (first >= _zones.size()) {
        _ctrl->complete(sqid, sqe.cid, Status::LbaOutOfRange);
        return;
    }
    std::uint32_t max_desc = nvme::kPageSize / 64;
    std::uint32_t count = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(max_desc, _zones.size() - first));
    auto buf = std::make_shared<std::vector<std::uint8_t>>(
        nvme::kPageSize, 0);
    for (std::uint32_t i = 0; i < count; ++i) {
        const Zone &z = _zones[first + i];
        std::uint8_t *d = buf->data() + i * 64ull;
        d[0] = 0x2; // zone type: sequential-write-required
        d[1] = static_cast<std::uint8_t>(
            static_cast<std::uint8_t>(z.state) << 4);
        std::uint64_t zslba = (first + i) * _zoneBlocks;
        std::uint64_t zcap = _zoneBlocks;
        std::uint64_t wp = zslba + z.wp;
        std::memcpy(d + 8, &zcap, 8);
        std::memcpy(d + 16, &zslba, 8);
        std::memcpy(d + 24, &wp, 8);
    }
    std::uint16_t cid = sqe.cid;
    _up->dmaWrite(sqe.prp1, nvme::kPageSize, buf->data(),
                  [this, cid, sqid, buf] {
                      _ctrl->complete(sqid, cid, Status::Success);
                  });
}

} // namespace bms::ssd
