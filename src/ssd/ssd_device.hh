/**
 * @file
 * NVMe SSD device model.
 *
 * One PCIe function exposing one NVMe controller with a single
 * namespace spanning the device capacity, a calibrated media timing
 * model, optional functional data storage, and a firmware slot that
 * supports download/commit with a realistic multi-second activation
 * stall (the raw material of the paper's hot-upgrade evaluation).
 *
 * The same object attaches either to a host RootPort (native
 * baseline) or to a BMS-Engine host-adaptor port (BM-Store testbed):
 * it only ever talks to a pcie::PcieUpstreamIf.
 */

#ifndef BMS_SSD_SSD_DEVICE_HH
#define BMS_SSD_SSD_DEVICE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "nvme/controller.hh"
#include "nvme/prp.hh"
#include "pcie/device.hh"
#include "sim/simulator.hh"
#include "sim/sparse_memory.hh"
#include "ssd/hdd_model.hh"
#include "ssd/media_model.hh"
#include "ssd/profile.hh"

namespace bms::ssd {

/**
 * Fault-injection knobs (failure testing; all zero in normal
 * operation). Runtime-mutable through SsdDevice::faults() so torture
 * harnesses can open and close fault windows mid-run.
 */
struct FaultConfig
{
    /** Probability a read hits an unrecoverable media error. */
    double readErrorRate = 0.0;
    /**
     * Probability a write fails with a media error. An injected
     * write failure never reaches the functional data store: the
     * previously stored bytes survive (clean-failure model, which is
     * what lets the data-integrity oracle keep an exact shadow map).
     */
    double writeErrorRate = 0.0;
    /** Probability an I/O command suffers an internal latency spike
     *  (GC stall / retry storm) before being processed. */
    double latencySpikeRate = 0.0;
    /** Duration of one injected latency spike. */
    sim::Tick latencySpikeDelay = sim::milliseconds(2);
};

/**
 * A complete back-end storage endpoint. By default an NVMe SSD; with
 * `hddProfile` set it models a SATA HDD served through the adaptor's
 * SATA personality (§VI-A) — same command interface, spinning-disk
 * media timing.
 */
class SsdDevice : public sim::SimObject, public pcie::PcieDeviceIf
{
  public:
    struct Config
    {
        SsdProfile profile = p4510_2tb();
        /** When set, the device is a SATA HDD (overrides `profile`'s
         *  media timing, capacity, model and firmware strings). */
        std::optional<HddProfile> hddProfile;
        /** Store real data bytes (integrity tests); off for benches. */
        bool functionalData = false;
        /** Initial fault-injection knobs. */
        FaultConfig faults;
    };

    SsdDevice(sim::Simulator &sim, std::string name, Config cfg);

    /** @name PcieDeviceIf */
    /// @{
    int functionCount() const override { return 1; }
    void mmioWrite(pcie::FunctionId fn, std::uint64_t offset,
                   std::uint64_t value) override;
    std::uint64_t mmioRead(pcie::FunctionId fn,
                           std::uint64_t offset) override;
    void attached(pcie::PcieUpstreamIf &upstream) override;
    /// @}

    nvme::ControllerModel &controller() { return *_ctrl; }
    const SsdProfile &profile() const { return _cfg.profile; }
    StorageMediaIf &media() { return *_media; }
    bool isHdd() const { return _cfg.hddProfile.has_value(); }

    /** Current firmware revision string. */
    const std::string &firmwareRev() const;

    /** Number of completed firmware activations. */
    std::uint32_t firmwareActivations() const { return _fwActivations; }

    /** True while a firmware activation stall is in progress. */
    bool upgrading() const { return _upgrading; }

    /** Duration of the most recent firmware activation stall. */
    sim::Tick lastActivationTime() const { return _lastActivation; }

    /** Injected unrecoverable read/write errors reported so far. */
    std::uint64_t mediaErrors() const { return _mediaErrors; }

    /** Injected latency spikes taken so far. */
    std::uint64_t latencySpikes() const { return _latencySpikes; }

    /** Live fault-injection knobs (mutable mid-run). */
    FaultConfig &faults() { return _cfg.faults; }
    const FaultConfig &faults() const { return _cfg.faults; }

    /** @name SMART attributes (NVMe-MI health telemetry). */
    /// @{
    /**
     * Composite temperature in Kelvin: idle floor plus a term driven
     * by recent I/O intensity (bytes moved per unit time).
     */
    std::uint16_t smartTemperatureK() const;

    /** Media wear: percentage of rated write endurance consumed. */
    std::uint8_t smartPercentageUsed() const;

    /** Power-on hours (simulated time). */
    std::uint64_t smartPowerOnHours() const
    {
        return now() / sim::seconds(3600);
    }
    /// @}

    /**
     * Power-cycle the device (hot-plug replacement): controller
     * disabled, contents dropped when @p wipe_data.
     */
    void hardReset(bool wipe_data);

    /** Direct access to stored bytes (test support). */
    sim::SparseMemory &flash() { return _flash; }

  private:
    /** The controller personality of this SSD. */
    class Controller : public nvme::ControllerModel
    {
      public:
        Controller(sim::Simulator &sim, std::string name, Config config,
                   SsdDevice &owner)
            : ControllerModel(sim, std::move(name), config), _owner(owner)
        {}

      protected:
        void
        executeIo(const nvme::Sqe &sqe, std::uint16_t sqid) override
        {
            _owner.executeIo(sqe, sqid);
        }

        void
        executeAdmin(const nvme::Sqe &sqe) override
        {
            _owner.executeAdmin(sqe);
        }

      private:
        SsdDevice &_owner;
    };

    friend class Controller;

    void executeIo(const nvme::Sqe &sqe, std::uint16_t sqid);
    void dispatchIo(const nvme::Sqe &sqe, std::uint16_t sqid);
    void executeAdmin(const nvme::Sqe &sqe);
    void doRead(const nvme::Sqe &sqe, std::uint16_t sqid);
    void doWrite(const nvme::Sqe &sqe, std::uint16_t sqid);
    void doWriteZeroes(const nvme::Sqe &sqe, std::uint16_t sqid);
    void doFlush(const nvme::Sqe &sqe, std::uint16_t sqid);

    /**
     * Resolve the command's PRPs into DMA segments, fetching the PRP
     * list over the upstream link when present.
     */
    void resolveSegments(
        const nvme::Sqe &sqe,
        std::function<void(std::vector<nvme::DmaSegment>)> then);

    /** Run @p done once per-segment DMA of @p buf has finished. */
    void dmaSegments(const std::vector<nvme::DmaSegment> &segs, bool to_host,
                     std::uint8_t *buf, std::function<void()> done);

    bool checkRange(const nvme::Sqe &sqe, std::uint16_t sqid);

    Config _cfg;
    std::unique_ptr<Controller> _ctrl;
    std::unique_ptr<StorageMediaIf> _media;
    pcie::PcieUpstreamIf *_up = nullptr;

    sim::SparseMemory _flash;

    // Firmware state.
    std::string _fwRev;
    std::vector<std::uint8_t> _fwStaging;
    std::uint32_t _fwActivations = 0;
    bool _upgrading = false;
    sim::Tick _lastActivation = 0;
    std::uint64_t _mediaErrors = 0;
    std::uint64_t _latencySpikes = 0;
};

} // namespace bms::ssd

#endif // BMS_SSD_SSD_DEVICE_HH
