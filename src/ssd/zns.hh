/**
 * @file
 * ZNS (Zoned Namespace) SSD model — the second device class the
 * paper's §VI-A compatibility discussion names.
 *
 * The device divides its capacity into fixed-size zones, each with a
 * write pointer: writes must land exactly at the pointer (or use
 * Zone Append, which returns the assigned LBA), zones progress
 * through Empty → Open → Full, only a bounded number may be active
 * at once, and Zone Management commands reset/open/close/finish
 * zones. Reads are unrestricted. The media timing reuses the flash
 * model; what ZNS changes is the *command-set contract*, which is
 * exactly what this model enforces.
 */

#ifndef BMS_SSD_ZNS_HH
#define BMS_SSD_ZNS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "nvme/controller.hh"
#include "pcie/device.hh"
#include "sim/simulator.hh"
#include "sim/sparse_memory.hh"
#include "ssd/media_model.hh"
#include "ssd/profile.hh"

namespace bms::ssd {

/** @name ZNS command-set opcodes (NVMe Zoned Namespace spec). */
/// @{
inline constexpr std::uint8_t kOpZoneMgmtSend = 0x79;
inline constexpr std::uint8_t kOpZoneMgmtRecv = 0x7A;
inline constexpr std::uint8_t kOpZoneAppend = 0x7D;
/// @}

/** Zone Send Actions (cdw13 [7:0]). */
enum class ZoneAction : std::uint8_t
{
    Close = 0x1,
    Finish = 0x2,
    Open = 0x3,
    Reset = 0x4,
};

/** Zone states (subset of the spec's state machine). */
enum class ZoneState : std::uint8_t
{
    Empty = 0x1,
    ImplicitlyOpen = 0x2,
    ExplicitlyOpen = 0x3,
    Closed = 0x4,
    Full = 0xE,
};

/** ZNS-specific command status values (Zoned command set). */
enum class ZnsStatus : std::uint16_t
{
    ZoneBoundaryError = 0xB8,
    ZoneIsFull = 0xB9,
    ZoneIsReadOnly = 0xBA,
    ZoneInvalidWrite = 0xBC,
    TooManyActiveZones = 0xBD,
    TooManyOpenZones = 0xBE,
};

/** Shape of a zoned namespace. */
struct ZnsProfile
{
    SsdProfile media = p4510_2tb(); ///< timing envelope
    std::uint64_t zoneBytes = sim::gib(1);
    std::uint32_t maxOpenZones = 14;
    std::uint32_t maxActiveZones = 28;
};

/** A ZNS SSD endpoint. */
class ZnsSsd : public sim::SimObject, public pcie::PcieDeviceIf
{
  public:
    struct Config
    {
        ZnsProfile profile;
        bool functionalData = false;
    };

    ZnsSsd(sim::Simulator &sim, std::string name, Config cfg);

    /** @name PcieDeviceIf */
    /// @{
    int functionCount() const override { return 1; }
    void mmioWrite(pcie::FunctionId fn, std::uint64_t offset,
                   std::uint64_t value) override;
    std::uint64_t mmioRead(pcie::FunctionId fn,
                           std::uint64_t offset) override;
    void attached(pcie::PcieUpstreamIf &upstream) override;
    /// @}

    nvme::ControllerModel &controller() { return *_ctrl; }

    /** @name Zone introspection (tests, management tooling). */
    /// @{
    std::uint64_t zoneCount() const { return _zones.size(); }
    std::uint64_t zoneBlocks() const { return _zoneBlocks; }
    ZoneState zoneState(std::uint64_t zone) const;
    /** Write pointer as an absolute LBA. */
    std::uint64_t writePointer(std::uint64_t zone) const;
    std::uint32_t openZones() const { return _openZones; }
    std::uint32_t activeZones() const { return _activeZones; }
    /// @}

  private:
    struct Zone
    {
        ZoneState state = ZoneState::Empty;
        std::uint64_t wp = 0; ///< offset within the zone, in blocks
    };

    class Controller : public nvme::ControllerModel
    {
      public:
        Controller(sim::Simulator &sim, std::string name, Config cfg,
                   ZnsSsd &owner)
            : ControllerModel(sim, std::move(name), cfg), _owner(owner)
        {}

      protected:
        void
        executeIo(const nvme::Sqe &sqe, std::uint16_t sqid) override
        {
            _owner.executeIo(sqe, sqid);
        }

      private:
        ZnsSsd &_owner;
    };

    friend class Controller;

    void executeIo(const nvme::Sqe &sqe, std::uint16_t sqid);
    void doRead(const nvme::Sqe &sqe, std::uint16_t sqid);
    void doWrite(const nvme::Sqe &sqe, std::uint16_t sqid,
                 bool is_append);
    void doZoneMgmtSend(const nvme::Sqe &sqe, std::uint16_t sqid);
    void doZoneMgmtRecv(const nvme::Sqe &sqe, std::uint16_t sqid);

    /** Transition helpers maintaining open/active accounting. */
    bool openZone(Zone &z, bool explicit_open);
    void closeZone(Zone &z);
    void finishZone(Zone &z);
    void resetZone(std::uint64_t zone_idx);

    void completeZns(std::uint16_t sqid, std::uint16_t cid,
                     ZnsStatus st);

    Config _cfg;
    std::unique_ptr<Controller> _ctrl;
    std::unique_ptr<MediaModel> _media;
    pcie::PcieUpstreamIf *_up = nullptr;
    sim::SparseMemory _flash;

    std::uint64_t _zoneBlocks = 0;
    std::vector<Zone> _zones;
    std::uint32_t _openZones = 0;
    std::uint32_t _activeZones = 0;
};

} // namespace bms::ssd

#endif // BMS_SSD_ZNS_HH
