#include "ssd/media_model.hh"

#include <utility>

namespace bms::ssd {

MediaModel::MediaModel(sim::Simulator &sim, std::string name,
                       const SsdProfile &profile)
    : SimObject(sim, std::move(name)), _profile(profile)
{
}

sim::Tick
MediaModel::jitter(sim::Tick base)
{
    double j = _profile.latencyJitter;
    if (j <= 0.0)
        return base;
    double f = sim().rng().uniformDouble(1.0 - j, 1.0 + j);
    return static_cast<sim::Tick>(static_cast<double>(base) * f);
}

sim::Tick
MediaModel::sampleReadLatency()
{
    sim::Tick lat = jitter(_profile.readLatency);
    if (_profile.outlierProb > 0.0 &&
        sim().rng().chance(_profile.outlierProb)) {
        lat = static_cast<sim::Tick>(static_cast<double>(lat) *
                                     _profile.outlierFactor);
    }
    return lat;
}

void
MediaModel::read(std::uint64_t offset, std::uint64_t bytes,
                 std::function<void()> done)
{
    (void)offset;
    PendingRead op{bytes, std::move(done)};
    if (_busyUnits < _profile.readUnits) {
        startRead(std::move(op));
    } else {
        _readQueue.push_back(std::move(op));
    }
}

void
MediaModel::startRead(PendingRead op)
{
    ++_busyUnits;
    sim::Tick media = sampleReadLatency();
    schedule(media, [this, op = std::move(op)]() mutable {
        releaseUnit();
        // Data crosses the shared internal channel after the NAND
        // access; back-to-back transfers serialize.
        sim::Tick start =
            now() > _readChannelBusy ? now() : _readChannelBusy;
        _readChannelBusy = start + _profile.readChannelBw.delayFor(op.bytes);
        sim().scheduleAt(_readChannelBusy,
                         [done = std::move(op.done)] { done(); });
    });
}

void
MediaModel::releaseUnit()
{
    --_busyUnits;
    if (!_readQueue.empty()) {
        PendingRead next = std::move(_readQueue.front());
        _readQueue.pop_front();
        startRead(std::move(next));
    }
}

void
MediaModel::write(std::uint64_t offset, std::uint64_t bytes,
                  std::function<void()> done)
{
    (void)offset;
    // Cache accept throttled by the drain channel: the busy-until
    // arithmetic enforces the sustained write bandwidth while keeping
    // the low-queue-depth latency at writeLatency.
    sim::Tick start = now() > _writeChannelBusy ? now() : _writeChannelBusy;
    _writeChannelBusy = start + _profile.writeChannelBw.delayFor(bytes);
    sim::Tick ack = _writeChannelBusy + jitter(_profile.writeLatency);
    sim().scheduleAt(ack, [done = std::move(done)] { done(); });
}

void
MediaModel::flush(std::function<void()> done)
{
    sim::Tick t = now() > _writeChannelBusy ? now() : _writeChannelBusy;
    sim().scheduleAt(t + _profile.flushLatency,
                     [done = std::move(done)] { done(); });
}

} // namespace bms::ssd
