/**
 * @file
 * SATA HDD medium — the §VI-A compatibility extension.
 *
 * The paper argues BM-Store's programmability lets the host adaptor
 * grow a SATA personality so spinning disks can serve as back-end
 * devices ("SATA HDDs ... are vital in local storage"). This model
 * provides the HDD side: a single actuator serving commands FIFO,
 * with distance-dependent seeks, rotational latency, streaming
 * transfer bandwidth, and sequential-access detection (no seek when
 * the head is already there). The command-level interface is the
 * shared StorageMediaIf, so the rest of the stack — engine, adaptor,
 * drivers — is unchanged, exactly the paper's point.
 */

#ifndef BMS_SSD_HDD_MODEL_HH
#define BMS_SSD_HDD_MODEL_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulator.hh"
#include "ssd/media_model.hh"

namespace bms::ssd {

/** 7200 rpm nearline SATA disk (Seagate Exos-class). */
struct HddProfile
{
    std::string model = "ST2000NM-SATA";
    std::uint64_t capacityBytes = 2000ull * 1000 * 1000 * 1000;

    /** Single-track (minimum) and full-stroke seek times. */
    sim::Tick seekMin = sim::microseconds(500);
    sim::Tick seekMax = sim::milliseconds(8);
    /** Spindle period (7200 rpm → 8.33 ms). */
    sim::Tick rotationPeriod = sim::microseconds(8333);
    /** Sustained media transfer rate. */
    sim::Bandwidth mediaBw = sim::Bandwidth::mbPerSec(210);
    /** On-board write cache acknowledges small writes quickly. */
    sim::Tick writeCacheLatency = sim::microseconds(80);
    std::uint64_t writeCacheBytes = sim::mib(128);

    std::string firmwareRev = "SN05";
};

/** Single-actuator spinning-disk timing model. */
class HddMediaModel : public sim::SimObject, public StorageMediaIf
{
  public:
    HddMediaModel(sim::Simulator &sim, std::string name,
                  const HddProfile &profile);

    void read(std::uint64_t offset, std::uint64_t bytes,
              std::function<void()> done) override;
    void write(std::uint64_t offset, std::uint64_t bytes,
               std::function<void()> done) override;
    void flush(std::function<void()> done) override;

    const HddProfile &profile() const { return _profile; }

    /** Operations that needed a mechanical seek (diagnostics). */
    std::uint64_t seeks() const { return _seeks; }
    std::uint64_t sequentialHits() const { return _seqHits; }

  private:
    sim::Tick positionCost(std::uint64_t offset);
    void access(std::uint64_t offset, std::uint64_t bytes, bool is_write,
                std::function<void()> done);

    HddProfile _profile;
    sim::Tick _actuatorBusy = 0;
    std::uint64_t _headPos = 0; ///< byte offset the head will be at
    std::uint64_t _cacheFill = 0;
    std::uint64_t _seeks = 0;
    std::uint64_t _seqHits = 0;
};

} // namespace bms::ssd

#endif // BMS_SSD_HDD_MODEL_HH
