#include "ssd/ssd_device.hh"

#include <utility>

namespace bms::ssd {

using nvme::AdminOpcode;
using nvme::IoOpcode;
using nvme::Sqe;
using nvme::Status;

SsdDevice::SsdDevice(sim::Simulator &sim, std::string name, Config cfg)
    : SimObject(sim, name), _cfg(cfg), _fwRev(cfg.profile.firmwareRev)
{
    nvme::ControllerModel::Config ctrl_cfg;
    ctrl_cfg.fn = 0;
    std::uint64_t capacity;
    if (_cfg.hddProfile) {
        ctrl_cfg.model = _cfg.hddProfile->model;
        _fwRev = _cfg.hddProfile->firmwareRev;
        capacity = _cfg.hddProfile->capacityBytes;
    } else {
        ctrl_cfg.model = _cfg.profile.model;
        capacity = _cfg.profile.capacityBytes;
    }
    _ctrl = std::make_unique<Controller>(sim, name + ".ctrl", ctrl_cfg,
                                         *this);
    if (_cfg.hddProfile) {
        _media = std::make_unique<HddMediaModel>(sim, name + ".media",
                                                 *_cfg.hddProfile);
    } else {
        _media = std::make_unique<MediaModel>(sim, name + ".media",
                                              _cfg.profile);
    }
    nvme::NamespaceInfo ns;
    ns.nsid = 1;
    ns.sizeBlocks = capacity / nvme::kBlockSize;
    _ctrl->addNamespace(ns);
}

void
SsdDevice::mmioWrite(pcie::FunctionId fn, std::uint64_t offset,
                     std::uint64_t value)
{
    BMS_ASSERT_EQ(fn, 0, "back-end SSD is single-function");
    _ctrl->regWrite(offset, value);
}

std::uint64_t
SsdDevice::mmioRead(pcie::FunctionId fn, std::uint64_t offset)
{
    BMS_ASSERT_EQ(fn, 0, "back-end SSD is single-function");
    return _ctrl->regRead(offset);
}

void
SsdDevice::attached(pcie::PcieUpstreamIf &upstream)
{
    _up = &upstream;
    _ctrl->setUpstream(&upstream);
}

const std::string &
SsdDevice::firmwareRev() const
{
    return _fwRev;
}

std::uint16_t
SsdDevice::smartTemperatureK() const
{
    // 35 C idle floor; up to ~+35 C at full-interface load.
    double bytes = static_cast<double>(_ctrl->readBytes() +
                                       _ctrl->writeBytes());
    double secs = sim::toSec(now());
    double load = secs > 0.0 ? bytes / secs / 3.3e9 : 0.0; // 0..~1
    if (load > 1.0)
        load = 1.0;
    return static_cast<std::uint16_t>(273 + 35 + load * 35.0);
}

std::uint8_t
SsdDevice::smartPercentageUsed() const
{
    // Rated endurance for the P4510 2 TB class: ~2.6 PBW.
    double rated = 2.6e15;
    double used = static_cast<double>(_ctrl->writeBytes()) / rated * 100.0;
    if (used > 255.0)
        used = 255.0;
    return static_cast<std::uint8_t>(used);
}

void
SsdDevice::hardReset(bool wipe_data)
{
    _ctrl->regWrite(nvme::kRegCc, 0); // drop CC.EN → full disable
    if (wipe_data)
        _flash.clear();
}

bool
SsdDevice::checkRange(const Sqe &sqe, std::uint16_t sqid)
{
    const nvme::NamespaceInfo *ns = _ctrl->findNamespace(sqe.nsid);
    if (!ns) {
        _ctrl->complete(sqid, sqe.cid, Status::InvalidNamespace);
        return false;
    }
    if (sqe.slba() + sqe.nlb() > ns->sizeBlocks) {
        _ctrl->complete(sqid, sqe.cid, Status::LbaOutOfRange);
        return false;
    }
    return true;
}

void
SsdDevice::executeIo(const Sqe &sqe, std::uint16_t sqid)
{
    // Injected latency spike: the command sits inside the drive (GC
    // stall, internal retry) before normal processing begins.
    if (_cfg.faults.latencySpikeRate > 0.0 &&
        sim().rng().chance(_cfg.faults.latencySpikeRate)) {
        ++_latencySpikes;
        schedule(_cfg.faults.latencySpikeDelay,
                 [this, sqe, sqid] { dispatchIo(sqe, sqid); });
        return;
    }
    dispatchIo(sqe, sqid);
}

void
SsdDevice::dispatchIo(const Sqe &sqe, std::uint16_t sqid)
{
    switch (static_cast<IoOpcode>(sqe.opcode)) {
      case IoOpcode::Read:
        doRead(sqe, sqid);
        return;
      case IoOpcode::Write:
        doWrite(sqe, sqid);
        return;
      case IoOpcode::Flush:
        doFlush(sqe, sqid);
        return;
      case IoOpcode::WriteZeroes:
        doWriteZeroes(sqe, sqid);
        return;
      default:
        _ctrl->complete(sqid, sqe.cid, Status::InvalidOpcode);
        return;
    }
}

void
SsdDevice::resolveSegments(
    const Sqe &sqe, std::function<void(std::vector<nvme::DmaSegment>)> then)
{
    std::uint64_t len = sqe.dataBytes();
    if (!nvme::needsPrpList(sqe.prp1, len)) {
        then(nvme::decodePrp(sqe.prp1, sqe.prp2, len, {}));
        return;
    }
    // Fetch the PRP list from upstream memory (host DRAM natively;
    // BMS-Engine chip memory when behind BM-Store).
    std::uint32_t entries = nvme::prpPageCount(sqe.prp1, len) - 1;
    auto raw = std::make_shared<std::vector<std::uint64_t>>(entries);
    _up->dmaRead(sqe.prp2,
                 static_cast<std::uint32_t>(entries * sizeof(std::uint64_t)),
                 reinterpret_cast<std::uint8_t *>(raw->data()),
                 [sqe, len, raw, then = std::move(then)] {
                     then(nvme::decodePrp(sqe.prp1, sqe.prp2, len, *raw));
                 });
}

void
SsdDevice::dmaSegments(const std::vector<nvme::DmaSegment> &segs,
                       bool to_host, std::uint8_t *buf,
                       std::function<void()> done)
{
    BMS_ASSERT(!segs.empty(), "DMA with no PRP segments");
    auto remaining = std::make_shared<std::size_t>(segs.size());
    auto fire = [remaining, done = std::move(done)] {
        if (--*remaining == 0)
            done();
    };
    std::uint64_t off = 0;
    for (const auto &seg : segs) {
        std::uint8_t *p = buf ? buf + off : nullptr;
        if (to_host)
            _up->dmaWrite(seg.addr, seg.len, p, fire);
        else
            _up->dmaRead(seg.addr, seg.len, p, fire);
        off += seg.len;
    }
}

void
SsdDevice::doRead(const Sqe &sqe, std::uint16_t sqid)
{
    if (!checkRange(sqe, sqid))
        return;
    if (_cfg.faults.readErrorRate > 0.0 &&
        sim().rng().chance(_cfg.faults.readErrorRate)) {
        // Unrecoverable media error: reported after a full media
        // access attempt, as real drives do.
        std::uint64_t bytes = sqe.dataBytes();
        _media->read(sqe.slba() * nvme::kBlockSize, bytes,
                     [this, sqe, sqid] {
                         ++_mediaErrors;
                         _ctrl->complete(sqid, sqe.cid,
                                         Status::DataTransferError);
                     });
        return;
    }
    std::uint64_t len = sqe.dataBytes();
    std::uint64_t media_off = sqe.slba() * nvme::kBlockSize;
    // Media access first; then the data is DMA'd to the host buffers.
    _media->read(media_off, len, [this, sqe, sqid, len, media_off] {
        resolveSegments(sqe, [this, sqe, sqid, len, media_off](
                                 std::vector<nvme::DmaSegment> segs) {
            std::shared_ptr<std::vector<std::uint8_t>> data;
            std::uint8_t *ptr = nullptr;
            if (_cfg.functionalData) {
                data = std::make_shared<std::vector<std::uint8_t>>(len);
                _flash.read(media_off, len, data->data());
                ptr = data->data();
            }
            dmaSegments(segs, true, ptr, [this, sqe, sqid, data] {
                _ctrl->complete(sqid, sqe.cid, Status::Success);
            });
        });
    });
}

void
SsdDevice::doWrite(const Sqe &sqe, std::uint16_t sqid)
{
    if (!checkRange(sqe, sqid))
        return;
    if (_cfg.faults.writeErrorRate > 0.0 &&
        sim().rng().chance(_cfg.faults.writeErrorRate)) {
        // Clean write failure: a full media access is attempted but
        // the stored bytes are left untouched (see FaultConfig).
        _media->write(sqe.slba() * nvme::kBlockSize, sqe.dataBytes(),
                      [this, sqe, sqid] {
                          ++_mediaErrors;
                          _ctrl->complete(sqid, sqe.cid,
                                          Status::DataTransferError);
                      });
        return;
    }
    std::uint64_t len = sqe.dataBytes();
    std::uint64_t media_off = sqe.slba() * nvme::kBlockSize;
    resolveSegments(sqe, [this, sqe, sqid, len, media_off](
                             std::vector<nvme::DmaSegment> segs) {
        std::shared_ptr<std::vector<std::uint8_t>> data;
        std::uint8_t *ptr = nullptr;
        if (_cfg.functionalData) {
            data = std::make_shared<std::vector<std::uint8_t>>(len);
            ptr = data->data();
        }
        dmaSegments(segs, false, ptr,
                    [this, sqe, sqid, len, media_off, data] {
                        if (data)
                            _flash.write(media_off, len, data->data());
                        _media->write(media_off, len, [this, sqe, sqid] {
                            _ctrl->complete(sqid, sqe.cid, Status::Success);
                        });
                    });
    });
}

void
SsdDevice::doWriteZeroes(const Sqe &sqe, std::uint16_t sqid)
{
    if (!checkRange(sqe, sqid))
        return;
    // FTL unmap: mark the range deallocated so reads return zeroes.
    // No data moves over the interface or to the media — the cost is
    // a mapping-table update, modelled with flush latency. Not subject
    // to write-error injection: the zero guarantee backing thin reads
    // must be unconditional (a real drive retries unmap internally).
    std::uint64_t off = sqe.slba() * nvme::kBlockSize;
    std::uint64_t len = sqe.dataBytes();
    if (_cfg.functionalData)
        _flash.clearRange(off, len);
    _media->flush([this, sqe, sqid] {
        _ctrl->complete(sqid, sqe.cid, Status::Success);
    });
}

void
SsdDevice::doFlush(const Sqe &sqe, std::uint16_t sqid)
{
    _media->flush([this, sqe, sqid] {
        _ctrl->complete(sqid, sqe.cid, Status::Success);
    });
}

void
SsdDevice::executeAdmin(const Sqe &sqe)
{
    switch (static_cast<AdminOpcode>(sqe.opcode)) {
      case AdminOpcode::FirmwareDownload: {
        // cdw10 NUMD (dwords - 1); we stage opaque bytes.
        std::uint32_t bytes = ((sqe.cdw10 & 0xffff) + 1) * 4;
        _fwStaging.resize(_fwStaging.size() + bytes);
        _ctrl->complete(0, sqe.cid, Status::Success);
        return;
      }
      case AdminOpcode::FirmwareCommit: {
        if (_upgrading) {
            _ctrl->complete(0, sqe.cid, Status::NamespaceNotReady);
            return;
        }
        // Activation stalls the device: no new command fetching until
        // the new image boots. Inflight I/O has already completed by
        // the time the BMS hot-upgrade flow issues the commit.
        _upgrading = true;
        _ctrl->pauseFetch();
        const auto &p = _cfg.profile;
        sim::Tick stall = static_cast<sim::Tick>(sim().rng().uniformInt(
            p.fwActivateMin, p.fwActivateMax));
        _lastActivation = stall;
        logInfo("firmware activation, stall ", sim::toMs(stall), " ms");
        schedule(stall, [this, sqe] {
            _upgrading = false;
            ++_fwActivations;
            _fwRev = "VDV10" + std::to_string(131 + _fwActivations);
            _fwStaging.clear();
            _ctrl->resumeFetch();
            _ctrl->complete(0, sqe.cid, Status::Success);
        });
        return;
      }
      case AdminOpcode::GetLogPage: {
        // SMART / health page: zero-filled placeholder payload.
        auto data =
            std::make_shared<std::vector<std::uint8_t>>(nvme::kPageSize, 0);
        std::uint16_t cid = sqe.cid;
        _ctrl->dmaToHost(sqe, data->data(), nvme::kPageSize,
                         [this, cid, data] {
                             _ctrl->complete(0, cid, Status::Success);
                         });
        return;
      }
      default:
        _ctrl->complete(0, sqe.cid, Status::InvalidOpcode);
        return;
    }
}

} // namespace bms::ssd
