/**
 * @file
 * SSD performance profiles.
 *
 * The P4510 profile is calibrated so the *native* single-disk numbers
 * match Table V / Fig. 8 of the BM-Store paper (which themselves match
 * the Intel P4510 2 TB datasheet envelope):
 *
 *   - 4K random read  qd1 : ~77 us end-to-end
 *   - 4K random read qd512: ~650K IOPS (read-unit bound)
 *   - seq read 128K qd1024: ~3.2 GB/s (internal channel bound)
 *   - 4K random write qd1 : ~11.6 us (write cache)
 *   - write throughput    : ~1.4 GB/s shared channel
 */

#ifndef BMS_SSD_PROFILE_HH
#define BMS_SSD_PROFILE_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace bms::ssd {

/** Calibration constants for one SSD model. */
struct SsdProfile
{
    std::string model = "GENERIC-NVME";
    std::uint64_t capacityBytes = sim::gib(2048);

    /** @name Read path. */
    /// @{
    /** Media latency of one read operation (NAND page read). */
    sim::Tick readLatency = sim::microsecondsF(70.6);
    /** Parallel read units (channels x planes the firmware exposes). */
    int readUnits = 46;
    /** Shared internal read data channel (NAND → controller). */
    sim::Bandwidth readChannelBw = sim::Bandwidth::gbPerSec(3.3);
    /// @}

    /** @name Write path (write-back cache + bounded drain). */
    /// @{
    /** Cache-hit latency of one write acknowledgment. */
    sim::Tick writeLatency = sim::microsecondsF(3.3);
    /** Shared write channel (drain bandwidth; enforces back-pressure). */
    sim::Bandwidth writeChannelBw = sim::Bandwidth::gbPerSec(1.46);
    /// @}

    /** Flush: wait for drain plus this fixed cost. */
    sim::Tick flushLatency = sim::microseconds(50);

    /** Relative jitter applied to media latencies (+/- fraction). */
    double latencyJitter = 0.08;
    /** Probability of a slow outlier read (media retry). */
    double outlierProb = 0.0005;
    /** Multiplier applied to readLatency for outliers. */
    double outlierFactor = 4.0;

    /** @name Firmware. */
    /// @{
    std::string firmwareRev = "VDV10131";
    /** Min/max firmware activation stall (paper Table IX: 6-9 s total
     *  with ~100 ms of BMS processing, remainder is the SSD). */
    sim::Tick fwActivateMin = sim::milliseconds(5900);
    sim::Tick fwActivateMax = sim::milliseconds(8800);
    /// @}
};

/** Intel P4510 2 TB (the paper's back-end disk). */
inline SsdProfile
p4510_2tb()
{
    SsdProfile p;
    p.model = "INTEL SSDPE2KX020T8";      // P4510 2.0 TB
    p.capacityBytes = 2000ull * 1000 * 1000 * 1000;
    return p;
}

} // namespace bms::ssd

#endif // BMS_SSD_PROFILE_HH
