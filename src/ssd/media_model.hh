/**
 * @file
 * SSD media timing model: parallel read units feeding a shared read
 * channel, and a write-back cache drained by a shared write channel.
 *
 * The model is deliberately simple — two shared serialization channels
 * plus a bounded read-unit pool — because those three resources are
 * exactly what shape the six fio cases of the paper's Table IV (see
 * ssd/profile.hh for the calibration math).
 */

#ifndef BMS_SSD_MEDIA_MODEL_HH
#define BMS_SSD_MEDIA_MODEL_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/simulator.hh"
#include "ssd/profile.hh"

namespace bms::ssd {

/**
 * Timing interface of a storage medium. Completion callbacks fire
 * when the media work for an operation is done (data is then ready
 * for DMA to the host / was absorbed from the host). @p offset lets
 * position-sensitive media (spinning disks) model seeks; flash
 * ignores it.
 */
class StorageMediaIf
{
  public:
    virtual ~StorageMediaIf() = default;

    /** Start a media read; @p done fires when the data is ready. */
    virtual void read(std::uint64_t offset, std::uint64_t bytes,
                      std::function<void()> done) = 0;

    /** Start a media write; @p done fires on acknowledgment. */
    virtual void write(std::uint64_t offset, std::uint64_t bytes,
                       std::function<void()> done) = 0;

    /** Flush volatile write state. */
    virtual void flush(std::function<void()> done) = 0;
};

/**
 * Flash (NVMe SSD) medium: parallel read units feeding a shared read
 * channel, and a write-back cache drained by a shared write channel.
 */
class MediaModel : public sim::SimObject, public StorageMediaIf
{
  public:
    MediaModel(sim::Simulator &sim, std::string name,
               const SsdProfile &profile);

    /**
     * Start a media read of @p bytes; @p done fires when the data has
     * crossed the internal read channel. Flash is position-agnostic:
     * @p offset is ignored.
     */
    void read(std::uint64_t offset, std::uint64_t bytes,
              std::function<void()> done) override;

    /**
     * Start a media write of @p bytes; @p done fires when the write
     * is acknowledged (cache accept, throttled by drain bandwidth).
     */
    void write(std::uint64_t offset, std::uint64_t bytes,
               std::function<void()> done) override;

    /** Flush: @p done fires when the write channel has drained. */
    void flush(std::function<void()> done) override;

    const SsdProfile &profile() const { return _profile; }

    /** Reads currently holding or waiting for a read unit. */
    std::uint32_t pendingReads() const { return _busyUnits + queuedReads(); }
    std::uint32_t queuedReads() const
    {
        return static_cast<std::uint32_t>(_readQueue.size());
    }

  private:
    struct PendingRead
    {
        std::uint64_t bytes;
        std::function<void()> done;
    };

    void startRead(PendingRead op);
    void releaseUnit();
    sim::Tick sampleReadLatency();
    sim::Tick jitter(sim::Tick base);

    SsdProfile _profile;
    int _busyUnits = 0;
    std::deque<PendingRead> _readQueue;
    sim::Tick _readChannelBusy = 0;
    sim::Tick _writeChannelBusy = 0;
};

} // namespace bms::ssd

#endif // BMS_SSD_MEDIA_MODEL_HH
