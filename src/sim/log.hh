/**
 * @file
 * Minimal leveled logging for simulation components.
 *
 * Off by default so benches stay quiet; tests and examples raise the
 * level to trace command flow. Messages are prefixed with simulated
 * time and component name.
 */

#ifndef BMS_SIM_LOG_HH
#define BMS_SIM_LOG_HH

#include <sstream>
#include <string>

#include "sim/types.hh"

namespace bms::sim {

enum class LogLevel
{
    None = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
};

/** Process-wide log configuration. */
class Log
{
  public:
    static LogLevel level() { return _level; }
    static void setLevel(LogLevel lvl) { _level = lvl; }
    static bool enabled(LogLevel lvl) { return lvl <= _level; }

    /** Emit one line: "[<time us>] <who>: <msg>". */
    static void write(LogLevel lvl, Tick now, const std::string &who,
                      const std::string &msg);

  private:
    static LogLevel _level;
};

namespace detail {

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    appendAll(os, rest...);
}

} // namespace detail

/** Compose a message from stream-able parts and log it. */
template <typename... Parts>
void
logAt(LogLevel lvl, Tick now, const std::string &who, const Parts &...parts)
{
    if (!Log::enabled(lvl))
        return;
    std::ostringstream os;
    detail::appendAll(os, parts...);
    Log::write(lvl, now, who, os.str());
}

} // namespace bms::sim

#endif // BMS_SIM_LOG_HH
