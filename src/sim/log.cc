#include "sim/log.hh"

#include <cstdio>

namespace bms::sim {

LogLevel Log::_level = LogLevel::None;

void
Log::write(LogLevel lvl, Tick now, const std::string &who,
           const std::string &msg)
{
    static const char *names[] = {"none", "warn", "info", "debug", "trace"};
    std::fprintf(stderr, "[%12.3f us] %-5s %s: %s\n", toUs(now),
                 names[static_cast<int>(lvl)], who.c_str(), msg.c_str());
}

} // namespace bms::sim
