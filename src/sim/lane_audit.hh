/**
 * @file
 * Same-tick lane-conflict sanitizer (the dynamic half of the
 * determinism auditor, DESIGN.md §13).
 *
 * The lane-sharded EventQueue executes events in exact global
 * (when, seq) order, so sharding cannot change behaviour *today* —
 * but the obvious next step, executing same-tick events of different
 * lanes concurrently, is only sound for state that is never shared
 * across lanes within one tick (or shared read-only). Nothing in the
 * tree records which state that is.
 *
 * This sanitizer produces that evidence. Instrumented structures
 * (LBA map tables, chip memory / global-PRP storage, QoS buckets,
 * the I/O monitor's heat table, SSD chunk pools) report each access
 * as (object, read|write); the EventQueue publishes the (tick, lane)
 * context of the event being executed. The audit groups accesses by
 * object and tick and flags every cross-lane pair where at least one
 * side is a write:
 *
 *   write/write  — two lanes mutate the object at the same tick;
 *   read/write   — one lane reads what another mutates at the same
 *                  tick (the read's result would depend on intra-tick
 *                  execution order under parallel lanes);
 *   read/read    — recorded in the census as well (informational:
 *                  these objects are shared but commutative), never
 *                  gated on.
 *
 * The aggregated, ranked census (LaneAudit::writeJson) is the
 * load-bearing artifact: it tells a future parallel-lane PR exactly
 * which objects need sharding, locking, or tick-local staging, and
 * scripts/check.sh regression-gates it against the committed
 * baseline so new cross-lane write sharing cannot land silently.
 *
 * Cost model: the recording core is always compiled (the self-test
 * exercises it in every build), but the hot-path hooks in the
 * instrumented structures are compiled only under -DBMS_LANE_AUDIT=ON
 * and every entry point is guarded by the `active()` flag, so normal
 * builds pay one untaken branch per executed event and nothing per
 * data-path access.
 *
 * Accesses made outside event execution (testbed construction,
 * drivers stepping the simulator from main()) have no lane context
 * and are ignored: only event-to-event sharing matters for lane
 * parallelism.
 */

#ifndef BMS_SIM_LANE_AUDIT_HH
#define BMS_SIM_LANE_AUDIT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace bms::sim {

/** Process-wide recorder for same-tick cross-lane access conflicts. */
class LaneAudit
{
  public:
    enum class Access : std::uint8_t
    {
        Read,
        Write,
    };

    /** One census row: an object/kind pair with occurrence stats. */
    struct Conflict
    {
        std::string object; ///< audit name of the shared structure
        std::string kind;   ///< "write-write", "read-write", "read-read"
        std::uint64_t count = 0; ///< conflicting accesses observed
        Tick firstTick = 0;      ///< tick of the first occurrence
        std::string firstRun;    ///< run label of the first occurrence
        LaneId laneA = 0;        ///< example lane pair of the first
        LaneId laneB = 0;        ///<   occurrence (laneA != laneB)
    };

    static LaneAudit &instance();

    /** Cheap global gate checked before any recording work. */
    static bool active() { return _active; }

    /** Start recording (idempotent). */
    void enable();

    /** Stop recording; registered objects and the census persist. */
    void disable();

    /**
     * Label subsequent records (e.g. "seed3", "full_card"); censuses
     * report the label of each conflict's first occurrence so a
     * finding can be replayed.
     */
    void setRun(std::string label);

    /**
     * Register an audited object under @p name and return its id.
     * Registration order is deterministic (it follows testbed
     * construction), ids are never reused within a process.
     */
    std::uint32_t registerObject(std::string name);

    /** Record one access to object @p id from the current event. */
    void record(std::uint32_t id, Access access);

    /**
     * The aggregated census, ranked by (count desc, object, kind) —
     * deterministic for a deterministic simulation.
     */
    std::vector<Conflict> census() const;

    /** Conflicts where at least one side is a write (the gated set). */
    std::vector<Conflict> writeConflicts() const;

    /**
     * Write the census as JSON (schema "bms-lane-census-v1", one
     * conflict object per line; see DESIGN.md §13).
     * @return false when the file cannot be written.
     */
    bool writeJson(const std::string &path, const std::string &binary) const;

    /** Drop all state: objects, census, run label (tests). */
    void reset();

    /** Total accesses recorded while enabled (tests / census meta). */
    std::uint64_t recordedAccesses() const { return _recorded; }

    /** @name Event context (published by EventQueue::runOne). */
    /// @{
    static void beginEvent(const void *queue, LaneId lane, Tick when);
    static void endEvent();
    /// @}

    /** RAII wrapper for begin/endEvent (exception safe). */
    class EventScope
    {
      public:
        EventScope(const void *queue, LaneId lane, Tick when)
        {
            if (LaneAudit::active()) {
                LaneAudit::beginEvent(queue, lane, when);
                _armed = true;
            }
        }
        ~EventScope()
        {
            if (_armed)
                LaneAudit::endEvent();
        }
        EventScope(const EventScope &) = delete;
        EventScope &operator=(const EventScope &) = delete;

      private:
        bool _armed = false;
    };

  private:
    LaneAudit() = default;

    /** Per-object, per-tick access window. */
    struct ObjState
    {
        std::string name;
        const void *queue = nullptr; ///< owning simulator's queue
        Tick tick = 0;
        bool windowOpen = false;
        std::vector<LaneId> readers; ///< lanes that read this tick
        std::vector<LaneId> writers; ///< lanes that wrote this tick
    };

    struct CensusEntry
    {
        std::uint64_t count = 0;
        Tick firstTick = 0;
        std::string firstRun;
        LaneId laneA = 0;
        LaneId laneB = 0;
    };

    void bump(const std::string &object, const char *kind, Tick tick,
              LaneId a, LaneId b);

    static bool _active;

    std::vector<ObjState> _objects;
    /** (object name, kind) → stats; std::map keeps census order
     *  deterministic (this file must pass its own lint). */
    std::map<std::pair<std::string, std::string>, CensusEntry> _census;
    std::string _run = "default";
    std::uint64_t _recorded = 0;
};

} // namespace bms::sim

/**
 * @name Instrumentation hooks for shared structures.
 *
 * Compiled away entirely unless the build sets -DBMS_LANE_AUDIT=ON:
 * the member declaration itself disappears, so normal builds carry
 * no per-object footprint and no per-access work.
 *
 *   class LbaMapTable {
 *       ...
 *       BMS_LANE_AUDIT_OBJ(_audit);
 *   };
 *   LbaMapTable::setEntry(...) { BMS_LANE_AUDIT_WRITE(_audit); ... }
 */
/// @{
#if defined(BMS_LANE_AUDIT)
#define BMS_LANE_AUDIT_OBJ(member)                                          \
    mutable std::uint32_t member = UINT32_MAX;                              \
    mutable std::string member##Name = "anon"
#define BMS_LANE_AUDIT_NAME(member, audit_name)                             \
    do {                                                                    \
        member##Name = (audit_name);                                        \
        (member) = UINT32_MAX;                                              \
    } while (0)
#define BMS_LANE_AUDIT_ACCESS(member, acc)                                  \
    do {                                                                    \
        if (::bms::sim::LaneAudit::active()) {                              \
            if ((member) == UINT32_MAX) {                                   \
                (member) = ::bms::sim::LaneAudit::instance()                \
                               .registerObject(member##Name);               \
            }                                                               \
            ::bms::sim::LaneAudit::instance().record((member), (acc));      \
        }                                                                   \
    } while (0)
#define BMS_LANE_AUDIT_READ(member)                                         \
    BMS_LANE_AUDIT_ACCESS(member, ::bms::sim::LaneAudit::Access::Read)
#define BMS_LANE_AUDIT_WRITE(member)                                        \
    BMS_LANE_AUDIT_ACCESS(member, ::bms::sim::LaneAudit::Access::Write)
#else
#define BMS_LANE_AUDIT_OBJ(member) static_assert(true, "")
#define BMS_LANE_AUDIT_NAME(member, audit_name) ((void)0)
#define BMS_LANE_AUDIT_READ(member) ((void)0)
#define BMS_LANE_AUDIT_WRITE(member) ((void)0)
#endif
/// @}

#endif // BMS_SIM_LANE_AUDIT_HH
