/**
 * @file
 * Simulator facade: owns the event queue, the root RNG, and the set
 * of named components; provides the scheduling API every model uses.
 */

#ifndef BMS_SIM_SIMULATOR_HH
#define BMS_SIM_SIMULATOR_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/random.hh"
#include "sim/stats_registry.hh"
#include "sim/types.hh"

namespace bms::sim {

class SimObject;

/**
 * One simulated world. All components of a testbed share one
 * Simulator; experiments construct a fresh Simulator per run.
 */
class Simulator
{
  public:
    explicit Simulator(std::uint64_t seed = 1)
        : _rng(seed)
    {}

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    Tick now() const { return _queue.now(); }
    EventQueue &queue() { return _queue; }
    Rng &rng() { return _rng; }
    StatsRegistry &stats() { return _stats; }

    /** Schedule @p cb at absolute tick @p when. */
    EventId
    scheduleAt(Tick when, EventQueue::Callback cb)
    {
        return _queue.schedule(when, std::move(cb));
    }

    /** Schedule @p cb after @p delay ticks. */
    EventId
    scheduleAfter(Tick delay, EventQueue::Callback cb)
    {
        return _queue.scheduleAfter(delay, std::move(cb));
    }

    /** Schedule @p cb at absolute tick @p when on event lane @p lane. */
    EventId
    scheduleOnAt(LaneId lane, Tick when, EventQueue::Callback cb)
    {
        return _queue.scheduleOn(lane, when, std::move(cb));
    }

    /** Schedule @p cb after @p delay ticks on event lane @p lane. */
    EventId
    scheduleOnAfter(LaneId lane, Tick delay, EventQueue::Callback cb)
    {
        return _queue.scheduleOn(lane, now() + delay, std::move(cb));
    }

    /**
     * Create a new event lane (see EventQueue::createLane). Hot
     * components call setEventLane() with the result so their events
     * stay in a small private heap.
     */
    LaneId createLane() { return _queue.createLane(); }

    void cancel(EventId id) { _queue.cancel(id); }

    /** Run until simulated time @p limit. */
    void runUntil(Tick limit) { _queue.runUntil(limit); }

    /** Run for @p duration more simulated time. */
    void runFor(Tick duration) { _queue.runUntil(now() + duration); }

    /** Run until no events remain. */
    Tick runAll() { return _queue.runAll(); }

    /**
     * Construct a component owned by this simulator. The object lives
     * until the simulator is destroyed, so raw pointers/references
     * between same-world components are safe.
     */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        auto obj = std::make_unique<T>(std::forward<Args>(args)...);
        T *raw = obj.get();
        _objects.push_back(std::move(obj));
        return raw;
    }

  private:
    EventQueue _queue;
    Rng _rng;
    StatsRegistry _stats;
    std::vector<std::unique_ptr<SimObject>> _objects;
};

/**
 * Base class for named simulation components. Provides convenient
 * access to the shared clock/scheduler and leveled logging.
 */
class SimObject
{
  public:
    SimObject(Simulator &sim, std::string name)
        : _sim(sim), _name(std::move(name))
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }
    Simulator &sim() const { return _sim; }
    Tick now() const { return _sim.now(); }

    /**
     * Route this component's self-scheduled events through @p lane.
     * Purely a data-structure placement hint: execution order is
     * independent of lane assignment (see EventQueue).
     */
    void setEventLane(LaneId lane) { _lane = lane; }
    LaneId eventLane() const { return _lane; }

  protected:
    EventId
    schedule(Tick delay, EventQueue::Callback cb)
    {
        return _sim.scheduleOnAfter(_lane, delay, std::move(cb));
    }

    /** Register a statistic under "<component name>.<stat>". */
    void
    registerStat(const std::string &stat, StatsRegistry::Provider p)
    {
        _sim.stats().add(_name + "." + stat, std::move(p));
    }

    template <typename... Parts>
    void
    logInfo(const Parts &...parts) const
    {
        logAt(LogLevel::Info, now(), _name, parts...);
    }

    template <typename... Parts>
    void
    logDebug(const Parts &...parts) const
    {
        logAt(LogLevel::Debug, now(), _name, parts...);
    }

    template <typename... Parts>
    void
    logTrace(const Parts &...parts) const
    {
        logAt(LogLevel::Trace, now(), _name, parts...);
    }

    template <typename... Parts>
    void
    logWarn(const Parts &...parts) const
    {
        logAt(LogLevel::Warn, now(), _name, parts...);
    }

  private:
    Simulator &_sim;
    std::string _name;
    LaneId _lane = kDefaultLane;
};

} // namespace bms::sim

#endif // BMS_SIM_SIMULATOR_HH
