/**
 * @file
 * Invariant-checking framework (gem5-style panic/assert).
 *
 * The simulator's correctness story rests on hardware-enforced
 * invariants — the LBA map's validation vectors, the global-PRP bit
 * encoding, the QoS credit accounting. A violated invariant is a
 * modelling bug, and the report must say *what* was violated and
 * *when* in simulated time, not just abort.
 *
 * `BMS_ASSERT(cond, ...)` and friends capture the failing expression,
 * source location, current simulated tick (from the innermost live
 * EventQueue), the component under check (see ScopedCheckComponent),
 * and any extra streamable context parts. On failure they either
 *
 *  - throw sim::SimPanic carrying the full report (PanicMode::Throw —
 *    what tests select so GTest's EXPECT_PANIC can assert on invariant
 *    violations without killing the test binary), or
 *  - print the report to stderr and abort (PanicMode::Abort — the
 *    default, what benches and examples get).
 *
 * `Check::paranoid()` gates the O(structure) self-checks
 * (`checkInvariants()` methods) that hot paths run after mutations;
 * enable it with `--paranoid` (see harness::applyCommonFlags) or the
 * `BMS_PARANOID=1` environment variable. Tests enable it
 * unconditionally (tests/panic_mode.cc).
 */

#ifndef BMS_SIM_CHECK_HH
#define BMS_SIM_CHECK_HH

#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace bms::sim {

/** Thrown on invariant violation under PanicMode::Throw. */
class SimPanic : public std::runtime_error
{
  public:
    explicit SimPanic(const std::string &report)
        : std::runtime_error(report)
    {}
};

/** What a failed check does after composing its report. */
enum class PanicMode
{
    Abort, ///< print to stderr and std::abort() (benches)
    Throw, ///< throw SimPanic (tests)
};

/** Process-wide checking configuration. */
class Check
{
  public:
    static PanicMode mode() { return _mode; }
    static void setMode(PanicMode m) { _mode = m; }

    /**
     * True when expensive structure-wide self-checks should run on
     * hot paths (`--paranoid` / BMS_PARANOID=1 / tests).
     */
    static bool paranoid() { return _paranoid; }
    static void setParanoid(bool on) { _paranoid = on; }

    /** Current simulated tick for reports; 0 when no queue is live. */
    static std::uint64_t reportTick();

  private:
    friend class EventQueue;

    /** Innermost live EventQueue registers itself for reportTick(). */
    static void pushTickSource(const class EventQueue *q);
    static void popTickSource(const class EventQueue *q);

    static PanicMode _mode;
    static bool _paranoid;
};

/** Restore the previous PanicMode on scope exit (EXPECT_PANIC). */
class ScopedPanicMode
{
  public:
    explicit ScopedPanicMode(PanicMode m) : _prev(Check::mode())
    {
        Check::setMode(m);
    }
    ~ScopedPanicMode() { Check::setMode(_prev); }
    ScopedPanicMode(const ScopedPanicMode &) = delete;
    ScopedPanicMode &operator=(const ScopedPanicMode &) = delete;

  private:
    PanicMode _prev;
};

/**
 * Names the component whose invariants are being checked so failure
 * reports read "component: engine0.qos" instead of a bare file:line.
 * Stack-like; the innermost guard wins.
 */
class ScopedCheckComponent
{
  public:
    explicit ScopedCheckComponent(const std::string &name);
    ~ScopedCheckComponent();
    ScopedCheckComponent(const ScopedCheckComponent &) = delete;
    ScopedCheckComponent &operator=(const ScopedCheckComponent &) = delete;

  private:
    const std::string *_prev;
};

namespace detail {

/** Print integral char-width values as numbers, everything else as-is. */
template <typename T>
void
appendValue(std::ostringstream &os, const T &v)
{
    using U = std::remove_cv_t<std::remove_reference_t<T>>;
    if constexpr (std::is_same_v<U, std::uint8_t> ||
                  std::is_same_v<U, std::int8_t>) {
        os << static_cast<int>(v);
    } else if constexpr (std::is_same_v<U, bool>) {
        os << (v ? "true" : "false");
    } else {
        os << v;
    }
}

/** Compose extra context parts into one string ("" when none). */
template <typename... Parts>
std::string
formatParts(const Parts &...parts)
{
    if constexpr (sizeof...(Parts) == 0) {
        return {};
    } else {
        std::ostringstream os;
        (appendValue(os, parts), ...);
        return os.str();
    }
}

template <typename T>
std::string
stringify(const T &v)
{
    std::ostringstream os;
    appendValue(os, v);
    return os.str();
}

/** Compose the report and throw/abort per Check::mode(). */
[[noreturn]] void checkFail(const char *kind, const char *expr,
                            const char *file, int line, const char *func,
                            const std::string &detail);

/** Same, for binary comparisons — includes both operand values. */
[[noreturn]] void checkFailCmp(const char *kind, const char *expr,
                               const char *file, int line, const char *func,
                               const std::string &lhs,
                               const std::string &rhs,
                               const std::string &detail);

} // namespace detail
} // namespace bms::sim

/**
 * Assert @p cond; extra arguments are streamed into the report, e.g.
 * `BMS_ASSERT(q.size() < cap, "queue ", name(), " overflow")`.
 */
#define BMS_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) [[unlikely]] {                                        \
            ::bms::sim::detail::checkFail(                                 \
                "BMS_ASSERT", #cond, __FILE__, __LINE__,                   \
                static_cast<const char *>(__func__),                       \
                ::bms::sim::detail::formatParts(__VA_ARGS__));             \
        }                                                                  \
    } while (0)

#define BMS_CHECK_CMP_(kind, a, b, op, ...)                                \
    do {                                                                   \
        const auto &bmsLhs_ = (a);                                         \
        const auto &bmsRhs_ = (b);                                         \
        if (!(bmsLhs_ op bmsRhs_)) [[unlikely]] {                          \
            ::bms::sim::detail::checkFailCmp(                              \
                kind, #a " " #op " " #b, __FILE__, __LINE__,               \
                static_cast<const char *>(__func__),                       \
                ::bms::sim::detail::stringify(bmsLhs_),                    \
                ::bms::sim::detail::stringify(bmsRhs_),                    \
                ::bms::sim::detail::formatParts(__VA_ARGS__));             \
        }                                                                  \
    } while (0)

/** Assert `a == b`, reporting both values on failure. */
#define BMS_ASSERT_EQ(a, b, ...) BMS_CHECK_CMP_("BMS_ASSERT_EQ", a, b, ==, __VA_ARGS__)
/** Assert `a != b`, reporting both values on failure. */
#define BMS_ASSERT_NE(a, b, ...) BMS_CHECK_CMP_("BMS_ASSERT_NE", a, b, !=, __VA_ARGS__)
/** Assert `a <= b`, reporting both values on failure. */
#define BMS_ASSERT_LE(a, b, ...) BMS_CHECK_CMP_("BMS_ASSERT_LE", a, b, <=, __VA_ARGS__)
/** Assert `a < b`, reporting both values on failure. */
#define BMS_ASSERT_LT(a, b, ...) BMS_CHECK_CMP_("BMS_ASSERT_LT", a, b, <, __VA_ARGS__)

/** Unconditional failure for unreachable/unsupported states. */
#define BMS_PANIC(...)                                                     \
    ::bms::sim::detail::checkFail(                                         \
        "BMS_PANIC", nullptr, __FILE__, __LINE__,                          \
        static_cast<const char *>(__func__),                               \
        ::bms::sim::detail::formatParts(__VA_ARGS__))

#endif // BMS_SIM_CHECK_HH
