#include "sim/check.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/event_queue.hh"

namespace bms::sim {

// Constant-initialised so the dynamic initialiser in a linked TU
// (tests/panic_mode.cc) can never be clobbered by init-order races.
// Benches abort with the report; tests flip the mode to Throw.
PanicMode Check::_mode = PanicMode::Abort;
bool Check::_paranoid = false;

namespace {

/** BMS_PARANOID=1 enables paranoid sweeps for any binary. The hook
 *  only ever *enables*, so its order relative to other initialisers
 *  (e.g. tests/panic_mode.cc) is irrelevant. */
[[maybe_unused]] const bool kEnvParanoid = [] {
    const char *env = std::getenv("BMS_PARANOID");
    if (env && env[0] == '1')
        Check::setParanoid(true);
    return true;
}();

/**
 * Stack of live event queues; reports read simulated time from the
 * innermost one. thread_local so concurrently-running test shards
 * never see each other's clocks.
 */
thread_local std::vector<const EventQueue *> tickSources;

/** Innermost component named by a ScopedCheckComponent guard. */
thread_local const std::string *currentComponent = nullptr;

} // namespace

std::uint64_t
Check::reportTick()
{
    return tickSources.empty() ? 0 : tickSources.back()->now();
}

void
Check::pushTickSource(const EventQueue *q)
{
    tickSources.push_back(q);
}

void
Check::popTickSource(const EventQueue *q)
{
    // Queues die in LIFO order in practice, but tolerate any order so
    // an oddly-scoped testbed cannot corrupt the stack.
    for (auto it = tickSources.rbegin(); it != tickSources.rend(); ++it) {
        if (*it == q) {
            tickSources.erase(std::next(it).base());
            return;
        }
    }
}

ScopedCheckComponent::ScopedCheckComponent(const std::string &name)
    : _prev(currentComponent)
{
    currentComponent = &name;
}

ScopedCheckComponent::~ScopedCheckComponent()
{
    currentComponent = _prev;
}

namespace detail {
namespace {

[[noreturn]] void
emit(const char *kind, const char *expr, const char *file, int line,
     const char *func, const std::string &values,
     const std::string &detail)
{
    std::ostringstream os;
    os << "panic: " << kind;
    if (expr)
        os << " failed: " << expr;
    if (!values.empty())
        os << " [" << values << "]";
    if (!detail.empty())
        os << "\n  detail: " << detail;
    os << "\n  at " << file << ":" << line << " (" << func << ")";
    os << "\n  tick: " << Check::reportTick() << " ns";
    if (currentComponent)
        os << "  component: " << *currentComponent;

    if (Check::mode() == PanicMode::Throw)
        throw SimPanic(os.str());
    std::fputs(os.str().c_str(), stderr);
    std::fputc('\n', stderr);
    std::abort();
}

} // namespace

void
checkFail(const char *kind, const char *expr, const char *file, int line,
          const char *func, const std::string &detail)
{
    emit(kind, expr, file, line, func, {}, detail);
}

void
checkFailCmp(const char *kind, const char *expr, const char *file,
             int line, const char *func, const std::string &lhs,
             const std::string &rhs, const std::string &detail)
{
    emit(kind, expr, file, line, func, "lhs=" + lhs + " rhs=" + rhs,
         detail);
}

} // namespace detail
} // namespace bms::sim
