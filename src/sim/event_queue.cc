#include "sim/event_queue.hh"

#include <utility>

#include "sim/check.hh"

namespace bms::sim {

EventQueue::EventQueue()
{
    Check::pushTickSource(this);
}

EventQueue::~EventQueue()
{
    Check::popTickSource(this);
}

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    BMS_ASSERT(when >= _now, "cannot schedule into the past: when=", when,
               " now=", _now);
    BMS_ASSERT(cb, "null event callback scheduled for tick ", when);
    EventId id = _nextId++;
    _heap.push(Entry{when, id, std::move(cb)});
    _pending.insert(id);
    ++_live;
    return id;
}

void
EventQueue::cancel(EventId id)
{
    if (id == kInvalidEventId)
        return;
    // Only ids that are still physically in the heap may enter the
    // lazily-deleted set; cancelling an executed (or never-issued) id
    // is a no-op. The entry is purged when its tick is popped, so
    // _cancelled can never outgrow the heap.
    if (!_pending.count(id) || !_cancelled.insert(id).second)
        return;
    BMS_ASSERT(_live > 0, "cancel(", id, ") with no live events");
    --_live;
}

bool
EventQueue::runOne()
{
    while (!_heap.empty()) {
        // priority_queue::top() is const; move out via const_cast is
        // safe because we pop immediately after.
        Entry entry = std::move(const_cast<Entry &>(_heap.top()));
        _heap.pop();
        _pending.erase(entry.id);
        if (_cancelled.erase(entry.id))
            continue;
        BMS_ASSERT(entry.when >= _now,
                   "event ", entry.id, " popped in the past: when=",
                   entry.when, " now=", _now);
        _now = entry.when;
        --_live;
        ++_executed;
        if (Check::paranoid())
            checkInvariants();
        entry.cb();
        return true;
    }
    return false;
}

void
EventQueue::runUntil(Tick limit)
{
    for (;;) {
        // Prune cancelled entries so the head check below sees the
        // next *live* event; otherwise a cancelled early entry could
        // let an event beyond @p limit execute.
        while (!_heap.empty() && _cancelled.count(_heap.top().id)) {
            _cancelled.erase(_heap.top().id);
            _pending.erase(_heap.top().id);
            _heap.pop();
        }
        if (_heap.empty() || _heap.top().when > limit)
            break;
        if (!runOne())
            break;
    }
    if (_now < limit)
        _now = limit;
}

Tick
EventQueue::runAll()
{
    while (runOne()) {
    }
    return _now;
}

void
EventQueue::checkInvariants() const
{
    if (!_heap.empty()) {
        BMS_ASSERT(_heap.top().when >= _now,
                   "head event scheduled in the past: when=",
                   _heap.top().when, " now=", _now);
    }
    // Lazily-deleted ids must all still sit in the heap awaiting
    // purge; anything else would let the set grow without bound.
    BMS_ASSERT_LE(_cancelled.size(), _heap.size(),
                  "cancelled-id set outgrew the heap");
    BMS_ASSERT_EQ(_pending.size(), _heap.size(),
                  "pending-id set out of sync with heap");
    BMS_ASSERT_EQ(_live + _cancelled.size(), _heap.size(),
                  "live/cancelled accounting does not cover the heap");
    for (EventId id : _cancelled) {
        BMS_ASSERT(_pending.count(id),
                   "cancelled id ", id, " is not pending in the heap");
    }
}

} // namespace bms::sim
