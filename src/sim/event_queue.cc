#include "sim/event_queue.hh"

#include <cassert>
#include <utility>

namespace bms::sim {

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    assert(when >= _now && "cannot schedule into the past");
    assert(cb && "null event callback");
    EventId id = _nextId++;
    _heap.push(Entry{when, id, std::move(cb)});
    ++_live;
    return id;
}

void
EventQueue::cancel(EventId id)
{
    if (id == kInvalidEventId)
        return;
    // Only mark ids that could still be pending; the set is pruned as
    // cancelled entries surface at the heap top.
    if (id < _nextId && _cancelled.insert(id).second && _live > 0)
        --_live;
}

bool
EventQueue::runOne()
{
    while (!_heap.empty()) {
        // priority_queue::top() is const; move out via const_cast is
        // safe because we pop immediately after.
        Entry entry = std::move(const_cast<Entry &>(_heap.top()));
        _heap.pop();
        if (_cancelled.erase(entry.id))
            continue;
        assert(entry.when >= _now);
        _now = entry.when;
        --_live;
        ++_executed;
        entry.cb();
        return true;
    }
    return false;
}

void
EventQueue::runUntil(Tick limit)
{
    for (;;) {
        // Prune cancelled entries so the head check below sees the
        // next *live* event; otherwise a cancelled early entry could
        // let an event beyond @p limit execute.
        while (!_heap.empty() && _cancelled.count(_heap.top().id)) {
            _cancelled.erase(_heap.top().id);
            _heap.pop();
        }
        if (_heap.empty() || _heap.top().when > limit)
            break;
        if (!runOne())
            break;
    }
    if (_now < limit)
        _now = limit;
}

Tick
EventQueue::runAll()
{
    while (runOne()) {
    }
    return _now;
}

} // namespace bms::sim
