#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "sim/check.hh"
#include "sim/lane_audit.hh"

namespace bms::sim {

EventQueue::EventQueue()
{
    Check::pushTickSource(this);
}

EventQueue::~EventQueue()
{
    Check::popTickSource(this);
}

LaneId
EventQueue::createLane()
{
    BMS_ASSERT_LT(_lanes.size(), kMaxLanes, "event lane id space exhausted");
    _lanes.emplace_back();
    return static_cast<LaneId>(_lanes.size() - 1);
}

EventId
EventQueue::scheduleOn(LaneId lane, Tick when, Callback cb)
{
    BMS_ASSERT(when >= _now, "cannot schedule into the past: when=", when,
               " now=", _now);
    BMS_ASSERT(cb, "null event callback scheduled for tick ", when);
    BMS_ASSERT_LT(lane, _lanes.size(), "schedule on unknown lane ", lane);
    Lane &L = _lanes[lane];

    std::uint32_t slot;
    if (!L.freeSlots.empty()) {
        slot = L.freeSlots.back();
        L.freeSlots.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(L.slots.size());
        BMS_ASSERT_LT(slot, kMaxSlots, "lane ", lane, " slot space exhausted");
        L.slots.emplace_back();
    }
    Slot &s = L.slots[slot];
    s.cb = std::move(cb);
    s.state = SlotState::Pending;

    std::uint64_t seq = _nextSeq++;
    L.heap.push_back(HeapEntry{when, seq, slot});
    std::push_heap(L.heap.begin(), L.heap.end(), EntryLater{});
    // If the new entry became the lane head, advertise it to the top
    // heap; stale references to the previous head are dropped lazily.
    if (L.heap.front().seq == seq)
        pushTop(when, seq, lane);
    ++_live;
    return makeId(s.gen, lane, slot);
}

void
EventQueue::cancel(EventId id)
{
    if (id == kInvalidEventId)
        return;
    auto lane = static_cast<std::uint32_t>((id >> kSlotBits) &
                                           (kMaxLanes - 1));
    auto slot = static_cast<std::uint32_t>(id & (kMaxSlots - 1));
    auto gen = static_cast<std::uint32_t>(id >> 32);
    // Ids of executed (or never-issued) events fail the generation
    // check and cancelling them is a no-op. The tombstoned entry is
    // purged when it reaches its lane head, so tombstone accounting
    // can never outgrow the heaps.
    if (lane >= _lanes.size())
        return;
    Lane &L = _lanes[lane];
    if (slot >= L.slots.size())
        return;
    Slot &s = L.slots[slot];
    if (s.gen != gen || s.state != SlotState::Pending)
        return;
    s.state = SlotState::Cancelled;
    s.cb = nullptr;
    ++L.cancelled;
    BMS_ASSERT(_live > 0, "cancel(", id, ") with no live events");
    --_live;
}

void
EventQueue::pushTop(Tick when, std::uint64_t seq, std::uint32_t lane)
{
    _top.push_back(TopEntry{when, seq, lane});
    std::push_heap(_top.begin(), _top.end(), TopLater{});
}

void
EventQueue::popTop()
{
    std::pop_heap(_top.begin(), _top.end(), TopLater{});
    _top.pop_back();
}

void
EventQueue::releaseSlot(Lane &lane, std::uint32_t slot)
{
    Slot &s = lane.slots[slot];
    s.cb = nullptr;
    s.state = SlotState::Free;
    if (++s.gen == 0)
        s.gen = 1;
    lane.freeSlots.push_back(slot);
}

void
EventQueue::purgeLaneHead(Lane &lane)
{
    while (!lane.heap.empty()) {
        const HeapEntry &h = lane.heap.front();
        if (lane.slots[h.slot].state != SlotState::Cancelled)
            break;
        releaseSlot(lane, h.slot);
        std::pop_heap(lane.heap.begin(), lane.heap.end(), EntryLater{});
        lane.heap.pop_back();
        BMS_ASSERT(lane.cancelled > 0, "tombstone count underflow");
        --lane.cancelled;
    }
}

bool
EventQueue::settleTop()
{
    while (!_top.empty()) {
        TopEntry t = _top.front();
        Lane &L = _lanes[t.lane];
        if (!L.heap.empty() && L.heap.front().seq == t.seq) {
            if (L.slots[L.heap.front().slot].state == SlotState::Pending)
                return true; // genuine, runnable lane head
            // Head is tombstoned: purge it (and any tombstoned
            // successors) and re-advertise the lane's new head.
            popTop();
            purgeLaneHead(L);
            if (!L.heap.empty())
                pushTop(L.heap.front().when, L.heap.front().seq, t.lane);
            continue;
        }
        popTop(); // stale reference to an executed/purged head
    }
    return false;
}

bool
EventQueue::runOne()
{
    if (!settleTop())
        return false;
    TopEntry t = _top.front();
    popTop();
    Lane &L = _lanes[t.lane];

    HeapEntry h = L.heap.front();
    std::pop_heap(L.heap.begin(), L.heap.end(), EntryLater{});
    L.heap.pop_back();
    Callback cb = std::move(L.slots[h.slot].cb);
    releaseSlot(L, h.slot);
    purgeLaneHead(L);
    if (!L.heap.empty())
        pushTop(L.heap.front().when, L.heap.front().seq, t.lane);

    BMS_ASSERT(h.when >= _now, "event popped in the past: when=", h.when,
               " now=", _now);
    _now = h.when;
    --_live;
    ++_executed;
    if (Check::paranoid())
        checkInvariants();
    // Publish (queue, lane, tick) so lane-audited structures can tag
    // accesses made by this callback; one untaken branch when the
    // audit is off (see sim/lane_audit.hh).
    LaneAudit::EventScope auditScope(this, static_cast<LaneId>(t.lane),
                                     h.when);
    cb();
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    // settleTop() purges tombstones on the way to the head, so the
    // limit check below always sees the next *live* event; a
    // cancelled early entry can never let an event beyond @p limit
    // execute. Re-settling inside runOne() is O(1) once settled.
    while (settleTop() && _top.front().when <= limit)
        runOne();
    if (_now < limit)
        _now = limit;
}

Tick
EventQueue::runAll()
{
    while (runOne()) {
    }
    return _now;
}

void
EventQueue::checkInvariants() const
{
    std::size_t live = 0;
    std::size_t cancelled = 0;
    for (const Lane &L : _lanes) {
        // Slab accounting: every slot is either in the heap (pending
        // or tombstoned) or on the free list.
        BMS_ASSERT_EQ(L.heap.size() + L.freeSlots.size(), L.slots.size(),
                      "lane slab accounting does not cover the heap");
        BMS_ASSERT_LE(L.cancelled, L.heap.size(),
                      "tombstone count outgrew the lane heap");
        if (!L.heap.empty()) {
            BMS_ASSERT(L.heap.front().when >= _now,
                       "lane head scheduled in the past: when=",
                       L.heap.front().when, " now=", _now);
        }
        live += L.heap.size() - L.cancelled;
        cancelled += L.cancelled;
    }
    BMS_ASSERT_EQ(live, _live,
                  "live accounting does not cover the lane heaps");

    // Reachability: every non-empty lane's current head must be
    // advertised in the top heap, or the merge would skip the lane.
    for (std::size_t lane = 0; lane < _lanes.size(); ++lane) {
        const Lane &L = _lanes[lane];
        if (L.heap.empty())
            continue;
        bool found = false;
        for (const TopEntry &t : _top) {
            if (t.lane == lane && t.seq == L.heap.front().seq) {
                found = true;
                break;
            }
        }
        BMS_ASSERT(found, "lane ", lane,
                   " head is not reachable from the top heap");
    }
}

} // namespace bms::sim
