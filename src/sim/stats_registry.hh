/**
 * @file
 * Named statistics registry (gem5-style stats dump).
 *
 * Components register named scalar providers at construction; at any
 * point — typically the end of an experiment — the whole simulated
 * world's counters can be dumped in one sorted listing. Providers are
 * callbacks, so dumping always reflects live values and registration
 * costs nothing on the hot path.
 */

#ifndef BMS_SIM_STATS_REGISTRY_HH
#define BMS_SIM_STATS_REGISTRY_HH

#include <cstdio>
#include <functional>
#include <map>
#include <string>

namespace bms::sim {

/** Registry of named scalar statistics. */
class StatsRegistry
{
  public:
    using Provider = std::function<double()>;

    /**
     * Register @p provider under @p name (dotted component paths,
     * e.g. "bms.qos.buffered"). Re-registering a name replaces the
     * provider (components recreated under the same name win).
     */
    void
    add(std::string name, Provider provider)
    {
        _providers[std::move(name)] = std::move(provider);
    }

    /** Current value of one statistic; 0 when unknown. */
    double
    value(const std::string &name) const
    {
        auto it = _providers.find(name);
        return it == _providers.end() ? 0.0 : it->second();
    }

    bool has(const std::string &name) const
    {
        return _providers.count(name) != 0;
    }

    std::size_t size() const { return _providers.size(); }

    /**
     * Dump statistics sorted by name to @p out. With @p prefix set,
     * only names starting with it are printed; zero-valued counters
     * are skipped unless @p include_zero (a 128-function card
     * registers stats for every VF; idle ones are noise).
     */
    void
    dump(std::FILE *out = stdout, const std::string &prefix = "",
         bool include_zero = false) const
    {
        std::fprintf(out, "---------- stats dump ----------\n");
        for (const auto &[name, provider] : _providers) {
            if (!prefix.empty() && name.rfind(prefix, 0) != 0)
                continue;
            double v = provider();
            if (v == 0.0 && !include_zero)
                continue;
            if (v == static_cast<double>(static_cast<long long>(v))) {
                std::fprintf(out, "%-48s %20lld\n", name.c_str(),
                             static_cast<long long>(v));
            } else {
                std::fprintf(out, "%-48s %20.3f\n", name.c_str(), v);
            }
        }
        std::fprintf(out, "--------------------------------\n");
    }

    /** Visit every (name, value) pair, sorted by name. */
    void
    visit(const std::function<void(const std::string &, double)> &fn) const
    {
        for (const auto &[name, provider] : _providers)
            fn(name, provider());
    }

  private:
    std::map<std::string, Provider> _providers;
};

} // namespace bms::sim

#endif // BMS_SIM_STATS_REGISTRY_HH
