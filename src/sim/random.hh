/**
 * @file
 * Deterministic random-number utilities for workload generation.
 *
 * Every stochastic component takes an explicit Rng so experiments are
 * reproducible from a single seed. Includes the Zipfian generator used
 * by the YCSB workload model.
 */

#ifndef BMS_SIM_RANDOM_HH
#define BMS_SIM_RANDOM_HH

#include "sim/check.hh"
#include <cmath>
#include <cstdint>
#include <random>

namespace bms::sim {

/** Thin deterministic wrapper over a 64-bit Mersenne twister. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed'b4e7'a11eULL)
        : _gen(seed)
    {}

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    uniformInt(std::uint64_t lo, std::uint64_t hi)
    {
        BMS_ASSERT_LE(lo, hi, "empty uniformInt range");
        return std::uniform_int_distribution<std::uint64_t>(lo, hi)(_gen);
    }

    /** Uniform double in [0, 1). */
    double uniform01() { return _unit(_gen); }

    /** Uniform double in [lo, hi). */
    double
    uniformDouble(double lo, double hi)
    {
        return lo + (hi - lo) * uniform01();
    }

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p) { return uniform01() < p; }

    /** Exponentially distributed value with the given mean. */
    double
    exponential(double mean)
    {
        BMS_ASSERT(mean > 0.0, "exponential mean must be positive");
        double u = uniform01();
        // Guard against log(0).
        if (u <= 0.0)
            u = 1e-12;
        return -mean * std::log(u);
    }

    /** Normal sample clamped to be non-negative. */
    double
    normalNonNeg(double mean, double stddev)
    {
        double v = std::normal_distribution<double>(mean, stddev)(_gen);
        return v < 0.0 ? 0.0 : v;
    }

    /** Fork an independent stream (e.g., one per tenant). */
    Rng
    fork()
    {
        return Rng(_gen() ^ 0x9e3779b97f4a7c15ULL);
    }

    std::mt19937_64 &engine() { return _gen; }

  private:
    std::mt19937_64 _gen;
    std::uniform_real_distribution<double> _unit{0.0, 1.0};
};

/**
 * Zipfian distribution over [0, n) using the rejection-inversion
 * method (Hörmann), as used by YCSB's ZipfianGenerator. Constant time
 * per sample, no O(n) setup.
 */
class ZipfianGenerator
{
  public:
    /**
     * @param n number of items (>= 1)
     * @param theta skew; YCSB default is 0.99. Must be in (0, 1).
     */
    ZipfianGenerator(std::uint64_t n, double theta = 0.99);

    /** Draw one item index in [0, n). Item 0 is the hottest. */
    std::uint64_t next(Rng &rng) const;

    std::uint64_t itemCount() const { return _n; }
    double theta() const { return _theta; }

  private:
    double hIntegral(double x) const;
    double hIntegralInverse(double x) const;
    double h(double x) const;

    std::uint64_t _n;
    double _theta;
    double _hIntegralX1;
    double _hIntegralNumItems;
    double _s;
};

} // namespace bms::sim

#endif // BMS_SIM_RANDOM_HH
