/**
 * @file
 * Sparse byte-addressable memory, allocated in 4 KiB pages on first
 * write. Backs both simulated host DRAM and SSD flash contents, so
 * end-to-end data-integrity tests can move real bytes while synthetic
 * benchmarks skip allocation entirely (timing-only transfers pass
 * null buffers and never touch this).
 */

#ifndef BMS_SIM_SPARSE_MEMORY_HH
#define BMS_SIM_SPARSE_MEMORY_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

namespace bms::sim {

/** Sparse memory; reads of never-written pages return zeroes. */
class SparseMemory
{
  public:
    static constexpr std::uint64_t kPageBytes = 4096;

    void
    read(std::uint64_t addr, std::uint64_t len, std::uint8_t *out) const
    {
        while (len > 0) {
            std::uint64_t page = addr / kPageBytes;
            std::uint64_t off = addr % kPageBytes;
            std::uint64_t chunk = std::min(len, kPageBytes - off);
            auto it = _pages.find(page);
            if (it == _pages.end()) {
                std::memset(out, 0, chunk);
            } else {
                std::memcpy(out, it->second->data() + off, chunk);
            }
            addr += chunk;
            out += chunk;
            len -= chunk;
        }
    }

    void
    write(std::uint64_t addr, std::uint64_t len, const std::uint8_t *data)
    {
        while (len > 0) {
            std::uint64_t page = addr / kPageBytes;
            std::uint64_t off = addr % kPageBytes;
            std::uint64_t chunk = std::min(len, kPageBytes - off);
            auto &slot = _pages[page];
            if (!slot)
                slot = std::make_unique<Page>();
            std::memcpy(slot->data() + off, data, chunk);
            addr += chunk;
            data += chunk;
            len -= chunk;
        }
    }

    /** Drop all contents (e.g., a replaced hot-plug disk). */
    void clear() { _pages.clear(); }

    /**
     * Drop whole pages inside [addr, addr+len) — subsequent reads
     * return zeroes (TRIM / zone reset). Partial pages at the edges
     * are zero-filled rather than dropped.
     */
    void
    clearRange(std::uint64_t addr, std::uint64_t len)
    {
        while (len > 0) {
            std::uint64_t page = addr / kPageBytes;
            std::uint64_t off = addr % kPageBytes;
            std::uint64_t chunk = std::min(len, kPageBytes - off);
            auto it = _pages.find(page);
            if (it != _pages.end()) {
                if (chunk == kPageBytes) {
                    _pages.erase(it);
                } else {
                    std::memset(it->second->data() + off, 0, chunk);
                }
            }
            addr += chunk;
            len -= chunk;
        }
    }

    std::size_t allocatedPages() const { return _pages.size(); }

  private:
    using Page = std::array<std::uint8_t, kPageBytes>;
    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> _pages;
};

} // namespace bms::sim

#endif // BMS_SIM_SPARSE_MEMORY_HH
