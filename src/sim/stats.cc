#include "sim/stats.hh"

#include <bit>
#include <cmath>

#include "sim/check.hh"

namespace bms::sim {

int
LatencyHistogram::bucketIndex(Tick value)
{
    if (value < kSub)
        return static_cast<int>(value); // exact for tiny values
    int octave = 63 - std::countl_zero(value);
    int shift = octave - kSubBits;
    int sub = static_cast<int>((value >> shift) & (kSub - 1));
    int idx = ((octave - kSubBits + 1) << kSubBits) + sub;
    BMS_ASSERT(idx >= 0 && idx < kOctaves * kSub,
               "histogram bucket out of range: idx=", idx);
    return idx;
}

Tick
LatencyHistogram::bucketLow(int index)
{
    if (index < kSub)
        return static_cast<Tick>(index);
    int block = index >> kSubBits;
    int sub = index & (kSub - 1);
    int octave = block + kSubBits - 1;
    int shift = octave - kSubBits;
    return (Tick{1} << octave) + (static_cast<Tick>(sub) << shift);
}

Tick
LatencyHistogram::bucketHigh(int index)
{
    if (index < kSub)
        return static_cast<Tick>(index);
    int block = index >> kSubBits;
    int octave = block + kSubBits - 1;
    int shift = octave - kSubBits;
    return bucketLow(index) + (Tick{1} << shift) - 1;
}

void
LatencyHistogram::add(Tick value)
{
    ++_buckets[static_cast<std::size_t>(bucketIndex(value))];
    ++_count;
    _sum += static_cast<double>(value);
    _min = std::min(_min, value);
    _max = std::max(_max, value);
}

double
LatencyHistogram::mean() const
{
    return _count ? _sum / static_cast<double>(_count) : 0.0;
}

Tick
LatencyHistogram::quantile(double q) const
{
    if (_count == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th sample (1-based, ceil), matching HDR semantics.
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(_count)));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        if (_buckets[i] == 0)
            continue;
        seen += _buckets[i];
        if (seen >= rank) {
            // Interpolate position within the bucket.
            std::uint64_t into = _buckets[i] - (seen - rank);
            double frac = static_cast<double>(into) /
                          static_cast<double>(_buckets[i]);
            Tick lo = bucketLow(static_cast<int>(i));
            Tick hi = bucketHigh(static_cast<int>(i));
            Tick v = lo + static_cast<Tick>(
                              frac * static_cast<double>(hi - lo));
            return std::clamp(v, _min, _max);
        }
    }
    return _max;
}

void
LatencyHistogram::reset()
{
    _buckets.fill(0);
    _count = 0;
    _sum = 0.0;
    _min = kTickMax;
    _max = 0;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < _buckets.size(); ++i)
        _buckets[i] += other._buckets[i];
    _count += other._count;
    _sum += other._sum;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

} // namespace bms::sim
