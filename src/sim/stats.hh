/**
 * @file
 * Statistics primitives used across the BM-Store model.
 *
 * LatencyHistogram is HDR-style (log2 octaves with linear sub-buckets)
 * so p99/p99.9 for Fig. 12 are accurate without storing raw samples.
 */

#ifndef BMS_SIM_STATS_HH
#define BMS_SIM_STATS_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace bms::sim {

/** Running mean / min / max / stddev over double samples. */
class SampleStats
{
  public:
    void
    add(double v)
    {
        ++_n;
        double delta = v - _mean;
        _mean += delta / static_cast<double>(_n);
        _m2 += delta * (v - _mean);
        _min = std::min(_min, v);
        _max = std::max(_max, v);
        _sum += v;
    }

    std::uint64_t count() const { return _n; }
    double sum() const { return _sum; }
    double mean() const { return _n ? _mean : 0.0; }
    double min() const { return _n ? _min : 0.0; }
    double max() const { return _n ? _max : 0.0; }

    double
    variance() const
    {
        return _n > 1 ? _m2 / static_cast<double>(_n - 1) : 0.0;
    }

    void
    reset()
    {
        *this = SampleStats{};
    }

  private:
    std::uint64_t _n = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _sum = 0.0;
    double _min = 1e300;
    double _max = -1e300;
};

/**
 * Fixed-memory latency histogram with ~3% relative error.
 *
 * Values are bucketed into 64 octaves x 32 linear sub-buckets.
 * Quantiles interpolate within the winning sub-bucket.
 */
class LatencyHistogram
{
  public:
    static constexpr int kSubBits = 5;                  // 32 sub-buckets
    static constexpr int kSub = 1 << kSubBits;
    static constexpr int kOctaves = 64;

    void add(Tick value);

    std::uint64_t count() const { return _count; }
    Tick min() const { return _count ? _min : 0; }
    Tick max() const { return _count ? _max : 0; }

    /** Arithmetic mean of recorded values. */
    double mean() const;

    /**
     * Quantile @p q in [0, 1]; e.g. 0.99 for p99. Returns 0 when
     * empty.
     */
    Tick quantile(double q) const;

    Tick p50() const { return quantile(0.50); }
    Tick p99() const { return quantile(0.99); }
    Tick p999() const { return quantile(0.999); }

    void reset();

    /** Merge another histogram into this one. */
    void merge(const LatencyHistogram &other);

  private:
    static int bucketIndex(Tick value);
    static Tick bucketLow(int index);
    static Tick bucketHigh(int index);

    std::array<std::uint64_t, kOctaves * kSub> _buckets{};
    std::uint64_t _count = 0;
    double _sum = 0.0;
    Tick _min = kTickMax;
    Tick _max = 0;
};

/**
 * Counts events over simulated time to report rates (IOPS, MB/s).
 * start() latches the window start; rate helpers divide by the
 * elapsed window.
 */
class RateMeter
{
  public:
    void
    start(Tick now)
    {
        _start = now;
        _ops = 0;
        _bytes = 0;
    }

    void
    record(std::uint64_t bytes)
    {
        ++_ops;
        _bytes += bytes;
    }

    std::uint64_t ops() const { return _ops; }
    std::uint64_t bytes() const { return _bytes; }

    double
    iops(Tick now) const
    {
        double secs = toSec(now - _start);
        return secs > 0.0 ? static_cast<double>(_ops) / secs : 0.0;
    }

    double
    mbPerSec(Tick now) const
    {
        double secs = toSec(now - _start);
        return secs > 0.0 ? static_cast<double>(_bytes) / 1e6 / secs : 0.0;
    }

  private:
    Tick _start = 0;
    std::uint64_t _ops = 0;
    std::uint64_t _bytes = 0;
};

/**
 * Periodic time series of a rate (e.g., IOPS per 100 ms window) for
 * the Fig. 15 hot-upgrade timeline.
 */
class TimeSeries
{
  public:
    explicit TimeSeries(Tick bucket_width = milliseconds(100))
        : _width(bucket_width)
    {}

    void
    record(Tick now, std::uint64_t weight = 1)
    {
        std::size_t idx = static_cast<std::size_t>(now / _width);
        if (idx >= _counts.size())
            _counts.resize(idx + 1, 0);
        _counts[idx] += weight;
    }

    Tick bucketWidth() const { return _width; }
    const std::vector<std::uint64_t> &counts() const { return _counts; }

    /** Count of bucket @p i expressed as a per-second rate. */
    double
    rateAt(std::size_t i) const
    {
        if (i >= _counts.size())
            return 0.0;
        return static_cast<double>(_counts[i]) / toSec(_width);
    }

    std::size_t size() const { return _counts.size(); }

  private:
    Tick _width;
    std::vector<std::uint64_t> _counts;
};

} // namespace bms::sim

#endif // BMS_SIM_STATS_HH
