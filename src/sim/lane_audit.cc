#include "sim/lane_audit.hh"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "sim/check.hh"

namespace bms::sim {

bool LaneAudit::_active = false;

namespace {

/** Context of the event currently being executed (single-threaded
 *  simulator: one context per process is enough). */
struct EventContext
{
    const void *queue = nullptr;
    LaneId lane = kDefaultLane;
    Tick when = 0;
    bool inEvent = false;
};

EventContext g_ctx;

/** Minimal JSON string escaping (audit names are plain identifiers,
 *  but a malformed name must not corrupt the census file). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

} // namespace

LaneAudit &
LaneAudit::instance()
{
    static LaneAudit audit;
    return audit;
}

void
LaneAudit::enable()
{
    _active = true;
}

void
LaneAudit::disable()
{
    _active = false;
}

void
LaneAudit::setRun(std::string label)
{
    _run = std::move(label);
}

std::uint32_t
LaneAudit::registerObject(std::string name)
{
    ObjState obj;
    obj.name = std::move(name);
    _objects.push_back(std::move(obj));
    return static_cast<std::uint32_t>(_objects.size() - 1);
}

void
LaneAudit::beginEvent(const void *queue, LaneId lane, Tick when)
{
    g_ctx.queue = queue;
    g_ctx.lane = lane;
    g_ctx.when = when;
    g_ctx.inEvent = true;
}

void
LaneAudit::endEvent()
{
    g_ctx.inEvent = false;
}

void
LaneAudit::bump(const std::string &object, const char *kind, Tick tick,
                LaneId a, LaneId b)
{
    CensusEntry &e = _census[{object, kind}];
    if (e.count == 0) {
        e.firstTick = tick;
        e.firstRun = _run;
        e.laneA = a;
        e.laneB = b;
    }
    ++e.count;
}

void
LaneAudit::record(std::uint32_t id, Access access)
{
    if (!_active || !g_ctx.inEvent)
        return; // setup/teardown code has no lane context
    BMS_ASSERT_LT(id, _objects.size(), "lane-audit access to unknown id ",
                  id);
    ObjState &obj = _objects[id];
    ++_recorded;

    const LaneId lane = g_ctx.lane;
    const Tick tick = g_ctx.when;
    // A new tick (or a different simulator's queue — runs are
    // sequential, so the pointer doubles as a run boundary) opens a
    // fresh access window.
    if (!obj.windowOpen || obj.tick != tick || obj.queue != g_ctx.queue) {
        obj.windowOpen = true;
        obj.tick = tick;
        obj.queue = g_ctx.queue;
        obj.readers.clear();
        obj.writers.clear();
    }

    auto other = [lane](const std::vector<LaneId> &lanes) -> int {
        for (LaneId l : lanes)
            if (l != lane)
                return l;
        return -1;
    };
    auto noted = [](std::vector<LaneId> &lanes, LaneId l) {
        if (std::find(lanes.begin(), lanes.end(), l) != lanes.end())
            return true;
        lanes.push_back(l);
        return false;
    };

    if (access == Access::Write) {
        int w = other(obj.writers);
        int r = other(obj.readers);
        if (w >= 0)
            bump(obj.name, "write-write", tick, static_cast<LaneId>(w),
                 lane);
        if (r >= 0)
            bump(obj.name, "read-write", tick, static_cast<LaneId>(r),
                 lane);
        noted(obj.writers, lane);
    } else {
        int w = other(obj.writers);
        int r = other(obj.readers);
        if (w >= 0)
            bump(obj.name, "read-write", tick, static_cast<LaneId>(w),
                 lane);
        else if (r >= 0)
            bump(obj.name, "read-read", tick, static_cast<LaneId>(r),
                 lane);
        noted(obj.readers, lane);
    }
}

std::vector<LaneAudit::Conflict>
LaneAudit::census() const
{
    std::vector<Conflict> out;
    out.reserve(_census.size());
    for (const auto &[key, e] : _census) {
        Conflict c;
        c.object = key.first;
        c.kind = key.second;
        c.count = e.count;
        c.firstTick = e.firstTick;
        c.firstRun = e.firstRun;
        c.laneA = e.laneA;
        c.laneB = e.laneB;
        out.push_back(std::move(c));
    }
    std::sort(out.begin(), out.end(),
              [](const Conflict &a, const Conflict &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  if (a.object != b.object)
                      return a.object < b.object;
                  return a.kind < b.kind;
              });
    return out;
}

std::vector<LaneAudit::Conflict>
LaneAudit::writeConflicts() const
{
    std::vector<Conflict> all = census();
    std::vector<Conflict> out;
    for (auto &c : all)
        if (c.kind != "read-read")
            out.push_back(std::move(c));
    return out;
}

bool
LaneAudit::writeJson(const std::string &path,
                     const std::string &binary) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": \"bms-lane-census-v1\",\n");
    std::fprintf(f, "  \"binary\": \"%s\",\n", jsonEscape(binary).c_str());
    std::fprintf(f, "  \"objects\": %zu,\n", _objects.size());
    std::fprintf(f, "  \"recordedAccesses\": %llu,\n",
                 static_cast<unsigned long long>(_recorded));
    std::fprintf(f, "  \"conflicts\": [\n");
    auto rows = census();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Conflict &c = rows[i];
        // One conflict per line: the baseline checker and ad-hoc grep
        // both rely on this layout (DESIGN.md §13).
        std::fprintf(f,
                     "    {\"object\": \"%s\", \"kind\": \"%s\", "
                     "\"count\": %llu, \"firstTick\": %llu, "
                     "\"firstRun\": \"%s\", \"lanes\": [%u, %u]}%s\n",
                     jsonEscape(c.object).c_str(),
                     jsonEscape(c.kind).c_str(),
                     static_cast<unsigned long long>(c.count),
                     static_cast<unsigned long long>(c.firstTick),
                     jsonEscape(c.firstRun).c_str(),
                     static_cast<unsigned>(c.laneA),
                     static_cast<unsigned>(c.laneB),
                     i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
}

void
LaneAudit::reset()
{
    _objects.clear();
    _census.clear();
    _run = "default";
    _recorded = 0;
    g_ctx = EventContext{};
}

} // namespace bms::sim
