/**
 * @file
 * Fundamental simulation types: ticks, durations, byte quantities.
 *
 * The simulator measures time in integer nanoseconds (Tick). All
 * component latencies in the BM-Store model are expressed in these
 * units; helpers below keep call sites readable.
 */

#ifndef BMS_SIM_TYPES_HH
#define BMS_SIM_TYPES_HH

#include <cstdint>

namespace bms::sim {

/** Simulated time, in nanoseconds since simulation start. */
using Tick = std::uint64_t;

/** Sentinel for "never" / unscheduled. */
inline constexpr Tick kTickMax = ~Tick{0};

/** @name Duration helpers (all return nanosecond ticks). */
/// @{
inline constexpr Tick nanoseconds(std::uint64_t n) { return n; }
inline constexpr Tick microseconds(std::uint64_t n) { return n * 1000; }
inline constexpr Tick milliseconds(std::uint64_t n) { return n * 1000'000; }
inline constexpr Tick seconds(std::uint64_t n) { return n * 1000'000'000; }

/** Fractional microseconds, rounded to the nearest nanosecond. */
inline constexpr Tick
microsecondsF(double us)
{
    return static_cast<Tick>(us * 1000.0 + 0.5);
}
/// @}

/** @name Tick → floating-point conversions for reporting. */
/// @{
inline constexpr double toUs(Tick t) { return static_cast<double>(t) / 1e3; }
inline constexpr double toMs(Tick t) { return static_cast<double>(t) / 1e6; }
inline constexpr double toSec(Tick t) { return static_cast<double>(t) / 1e9; }
/// @}

/** @name Byte-quantity helpers. */
/// @{
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

inline constexpr std::uint64_t kib(std::uint64_t n) { return n * kKiB; }
inline constexpr std::uint64_t mib(std::uint64_t n) { return n * kMiB; }
inline constexpr std::uint64_t gib(std::uint64_t n) { return n * kGiB; }
/// @}

/**
 * Bandwidth expressed as bytes per second. Stored as double so
 * per-byte serialization delays below 1 ns accumulate correctly.
 */
struct Bandwidth
{
    double bytesPerSec = 0.0;

    /** Serialization delay for @p bytes at this rate, in ticks. */
    constexpr Tick
    delayFor(std::uint64_t bytes) const
    {
        if (bytesPerSec <= 0.0)
            return 0;
        return static_cast<Tick>(
            static_cast<double>(bytes) * 1e9 / bytesPerSec + 0.5);
    }

    static constexpr Bandwidth
    mbPerSec(double mb)
    {
        return Bandwidth{mb * 1e6};
    }

    static constexpr Bandwidth
    gbPerSec(double gb)
    {
        return Bandwidth{gb * 1e9};
    }
};

} // namespace bms::sim

#endif // BMS_SIM_TYPES_HH
