#include "sim/random.hh"

namespace bms::sim {

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : _n(n), _theta(theta)
{
    BMS_ASSERT(n >= 1, "zipf needs at least one item");
    BMS_ASSERT(theta > 0.0 && theta < 1.0,
               "zipf skew out of range: theta=", theta);
    _hIntegralX1 = hIntegral(1.5) - 1.0;
    _hIntegralNumItems = hIntegral(static_cast<double>(n) + 0.5);
    _s = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
}

double
ZipfianGenerator::h(double x) const
{
    return std::exp(-_theta * std::log(x));
}

double
ZipfianGenerator::hIntegral(double x) const
{
    double log_x = std::log(x);
    return x * std::exp(-_theta * log_x) / (1.0 - _theta);
}

double
ZipfianGenerator::hIntegralInverse(double x) const
{
    double t = x * (1.0 - _theta);
    if (t < -1.0)
        t = -1.0; // guard against floating rounding
    return std::exp(std::log(t) / (1.0 - _theta));
}

std::uint64_t
ZipfianGenerator::next(Rng &rng) const
{
    if (_n == 1)
        return 0;
    for (;;) {
        double u = _hIntegralNumItems +
                   rng.uniform01() * (_hIntegralX1 - _hIntegralNumItems);
        double x = hIntegralInverse(u);
        auto k = static_cast<std::int64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        else if (static_cast<std::uint64_t>(k) > _n)
            k = static_cast<std::int64_t>(_n);
        double kd = static_cast<double>(k);
        if (kd - x <= _s || u >= hIntegral(kd + 0.5) - h(kd))
            return static_cast<std::uint64_t>(k) - 1;
    }
}

} // namespace bms::sim
