/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events scheduled at the same tick execute in scheduling order
 * (FIFO), which keeps every experiment bit-for-bit reproducible for a
 * given seed. Cancellation is supported via lazily-deleted ids: a
 * cancelled entry stays in the heap and is purged when its tick is
 * popped, so the cancelled-id set is always bounded by the heap size
 * (checkInvariants() enforces this).
 */

#ifndef BMS_SIM_EVENT_QUEUE_HH
#define BMS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace bms::sim {

/** Handle for a scheduled event, usable with EventQueue::cancel(). */
using EventId = std::uint64_t;

/** Id returned for events that were not actually scheduled. */
inline constexpr EventId kInvalidEventId = 0;

/**
 * Priority queue of timed callbacks with deterministic same-tick
 * ordering and O(log n) schedule/pop.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @pre when >= now()
     * @return id usable with cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    scheduleAfter(Tick delay, Callback cb)
    {
        return schedule(_now + delay, std::move(cb));
    }

    /**
     * Cancel a pending event. Cancelling an already-executed or
     * unknown id is a harmless no-op.
     */
    void cancel(EventId id);

    /** True if no runnable events remain. */
    bool empty() const { return _live == 0; }

    /** Number of runnable (not cancelled) pending events. */
    std::size_t size() const { return _live; }

    /**
     * Pop and execute the next event.
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until simulated time would exceed @p limit. Events
     * scheduled exactly at @p limit do run. Time advances to @p limit
     * even if the queue drains earlier.
     */
    void runUntil(Tick limit);

    /** Run until the queue is empty. @return final simulated time. */
    Tick runAll();

    /** Total number of events executed since construction. */
    std::uint64_t executedCount() const { return _executed; }

    /**
     * Structure-wide self-check (BMS_ASSERT on violation):
     *  - the head event is never in the past;
     *  - every heap entry is accounted as either live or cancelled,
     *    so the lazily-deleted id set cannot grow unboundedly;
     *  - live/pending bookkeeping agrees with the heap.
     * Runs after every pop under Check::paranoid(); tests call it
     * directly.
     */
    void checkInvariants() const;

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id; // FIFO among same-tick events
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _heap;
    /** Ids scheduled but not yet popped (still physically in _heap). */
    std::unordered_set<EventId> _pending;
    /** Pending ids whose entry must be dropped when popped. */
    std::unordered_set<EventId> _cancelled;
    Tick _now = 0;
    EventId _nextId = 1;
    std::size_t _live = 0;
    std::uint64_t _executed = 0;
};

} // namespace bms::sim

#endif // BMS_SIM_EVENT_QUEUE_HH
