/**
 * @file
 * Deterministic discrete-event queue, sharded into per-component
 * event lanes.
 *
 * Events scheduled at the same tick execute in scheduling order
 * (FIFO), which keeps every experiment bit-for-bit reproducible for a
 * given seed. Internally the queue is split into lanes (one per hot
 * component: front function, SSD slot, host driver, ...); each lane
 * keeps a small binary heap of POD entries while callbacks live in a
 * per-lane slab. A top-level heap merges the lane heads in exact
 * global (when, seq) order, where `seq` is a queue-wide monotone
 * schedule counter — so the execution order is *identical* to a
 * single flat queue regardless of how events are partitioned into
 * lanes. Determinism therefore does not depend on the lane layout.
 *
 * Cancellation tombstones the slab slot; the entry is purged when it
 * reaches its lane head, so cancelled bookkeeping is always bounded
 * by the heap contents (checkInvariants() enforces the accounting).
 */

#ifndef BMS_SIM_EVENT_QUEUE_HH
#define BMS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace bms::sim {

/** Handle for a scheduled event, usable with EventQueue::cancel(). */
using EventId = std::uint64_t;

/** Id returned for events that were not actually scheduled. */
inline constexpr EventId kInvalidEventId = 0;

/** Identifies one event lane; lane 0 always exists (the default). */
using LaneId = std::uint16_t;

/** Lane every event lands on unless a component opts into its own. */
inline constexpr LaneId kDefaultLane = 0;

/**
 * Priority queue of timed callbacks with deterministic same-tick
 * ordering, O(log lane-size) schedule/pop, and O(1) cancellation.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Create a new event lane and return its id. Lanes are cheap;
     * hot components get one each so their heaps stay small and
     * cache-resident. Never returns kDefaultLane.
     */
    LaneId createLane();

    /** Number of lanes (>= 1; lane 0 always exists). */
    std::size_t laneCount() const { return _lanes.size(); }

    /**
     * Schedule @p cb to run at absolute time @p when on lane 0.
     * @pre when >= now()
     * @return id usable with cancel().
     */
    EventId
    schedule(Tick when, Callback cb)
    {
        return scheduleOn(kDefaultLane, when, std::move(cb));
    }

    /** Schedule @p cb to run @p delay ticks from now on lane 0. */
    EventId
    scheduleAfter(Tick delay, Callback cb)
    {
        return scheduleOn(kDefaultLane, _now + delay, std::move(cb));
    }

    /** Schedule @p cb at absolute time @p when on lane @p lane. */
    EventId scheduleOn(LaneId lane, Tick when, Callback cb);

    /**
     * Cancel a pending event. Cancelling an already-executed or
     * unknown id is a harmless no-op.
     */
    void cancel(EventId id);

    /** True if no runnable events remain. */
    bool empty() const { return _live == 0; }

    /** Number of runnable (not cancelled) pending events. */
    std::size_t size() const { return _live; }

    /**
     * Pop and execute the next event.
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until simulated time would exceed @p limit. Events
     * scheduled exactly at @p limit do run. Time advances to @p limit
     * even if the queue drains earlier.
     */
    void runUntil(Tick limit);

    /** Run until the queue is empty. @return final simulated time. */
    Tick runAll();

    /** Total number of events executed since construction. */
    std::uint64_t executedCount() const { return _executed; }

    /**
     * Structure-wide self-check (BMS_ASSERT on violation):
     *  - no lane head is in the past;
     *  - every heap entry is accounted as either live or cancelled,
     *    so tombstone bookkeeping cannot grow unboundedly;
     *  - per-lane slab accounting (heap + free list covers the slab);
     *  - every non-empty lane's head is reachable from the top heap.
     * Runs after every pop under Check::paranoid(); tests call it
     * directly.
     */
    void checkInvariants() const;

  private:
    /** EventId layout: generation(32) | lane(14) | slot(18).
     *  Lanes are per-component, so fleet-scale runs (hundreds of
     *  cards × ~130 lanes each) need the wide lane space; each lane's
     *  slab stays far below 256k pending callbacks. */
    static constexpr unsigned kSlotBits = 18;
    static constexpr unsigned kLaneBits = 14;
    static constexpr std::uint32_t kMaxSlots = 1u << kSlotBits;
    static constexpr std::uint32_t kMaxLanes = 1u << kLaneBits;

    enum class SlotState : std::uint8_t
    {
        Free,
        Pending,
        Cancelled,
    };

    /** POD heap entry: 24 bytes, no callback, cache friendly. */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Min-heap comparator: earliest (when, seq) at the front. */
    struct EntryLater
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq; // FIFO among same-tick events
        }
    };

    struct Slot
    {
        Callback cb;
        std::uint32_t gen = 1;
        SlotState state = SlotState::Free;
    };

    struct Lane
    {
        std::vector<HeapEntry> heap; ///< binary heap (EntryLater)
        std::vector<Slot> slots;     ///< callback slab
        std::vector<std::uint32_t> freeSlots;
        std::size_t cancelled = 0; ///< tombstones still in `heap`
    };

    /** Lazily-maintained reference to a lane head. */
    struct TopEntry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t lane;
    };

    struct TopLater
    {
        bool
        operator()(const TopEntry &a, const TopEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    static EventId
    makeId(std::uint32_t gen, LaneId lane, std::uint32_t slot)
    {
        return (static_cast<EventId>(gen) << 32) |
               (static_cast<EventId>(lane) << kSlotBits) | slot;
    }

    void pushTop(Tick when, std::uint64_t seq, std::uint32_t lane);
    void popTop();
    void releaseSlot(Lane &lane, std::uint32_t slot);
    /** Drop tombstoned entries sitting at @p lane's head. */
    void purgeLaneHead(Lane &lane);
    /**
     * Make _top.front() reference the true global-minimum runnable
     * event, purging tombstones and stale head references on the way.
     * @return false if no runnable event remains.
     */
    bool settleTop();

    std::vector<Lane> _lanes{1}; ///< lane 0 always exists
    std::vector<TopEntry> _top;  ///< binary heap (TopLater)
    Tick _now = 0;
    std::uint64_t _nextSeq = 1; ///< queue-wide schedule order
    std::size_t _live = 0;
    std::uint64_t _executed = 0;
};

} // namespace bms::sim

#endif // BMS_SIM_EVENT_QUEUE_HH
