/**
 * @file
 * TPC-C driver for the MySQL model (paper Fig. 13(a): 100 warehouses,
 * 32 concurrent threads, normalized transaction counts).
 *
 * The five standard transaction profiles are expressed as storage
 * demands (dependent page reads, dirtied pages, redo bytes) in the
 * standard 45/43/4/4/4 mix.
 */

#ifndef BMS_APPS_TPCC_HH
#define BMS_APPS_TPCC_HH

#include <cstdint>
#include <functional>
#include <string>

#include "apps/mysql_model.hh"
#include "sim/stats.hh"

namespace bms::apps {

/** TPC-C run parameters. */
struct TpccConfig
{
    int warehouses = 100; ///< scales the database size via MySqlConfig
    int threads = 32;
    sim::Tick rampTime = sim::milliseconds(50);
    sim::Tick runTime = sim::milliseconds(600);
};

/** Closed-loop TPC-C load generator. */
class TpccDriver : public sim::SimObject
{
  public:
    struct Result
    {
        std::uint64_t transactions = 0; ///< all profiles
        std::uint64_t newOrders = 0;
        double tps = 0.0;
        double tpmC = 0.0; ///< NewOrder per minute
        sim::LatencyHistogram latency;
    };

    TpccDriver(sim::Simulator &sim, std::string name, MySqlModel &db,
               TpccConfig cfg);

    void start(std::function<void()> done = nullptr);
    bool finished() const { return _finished; }
    const Result &result() const { return _result; }

  private:
    enum class Profile
    {
        NewOrder,
        Payment,
        OrderStatus,
        Delivery,
        StockLevel,
    };

    Profile pickProfile();
    TxnSpec specFor(Profile p);
    void loop(int thread);

    MySqlModel &_db;
    TpccConfig _cfg;
    sim::Rng _rng;

    bool _stopping = false;
    bool _finished = false;
    int _outstanding = 0;
    sim::Tick _measureStart = 0;
    sim::Tick _measureEnd = 0;
    Result _result;
    std::function<void()> _done;
};

} // namespace bms::apps

#endif // BMS_APPS_TPCC_HH
