/**
 * @file
 * YCSB driver for the RocksDB model (paper Fig. 14(a): RocksDB
 * throughput under mixed multi-VM workloads).
 *
 * Implements the core YCSB workloads as read/update mixes over a
 * Zipfian (theta = 0.99) key popularity distribution:
 *   A = 50/50, B = 95/5, C = 100/0.
 */

#ifndef BMS_APPS_YCSB_HH
#define BMS_APPS_YCSB_HH

#include <cstdint>
#include <functional>
#include <string>

#include "apps/rocksdb_model.hh"
#include "sim/stats.hh"

namespace bms::apps {

/** YCSB run parameters. */
struct YcsbConfig
{
    char workload = 'A'; ///< 'A', 'B' or 'C'
    int threads = 16;
    std::uint64_t records = 10'000'000; ///< must match the DB's keyCount
    double zipfTheta = 0.99;
    sim::Tick rampTime = sim::milliseconds(50);
    sim::Tick runTime = sim::milliseconds(600);
};

/** Closed-loop YCSB client. */
class YcsbDriver : public sim::SimObject
{
  public:
    struct Result
    {
        std::uint64_t reads = 0;
        std::uint64_t updates = 0;
        double opsPerSec = 0.0;
        sim::LatencyHistogram readLatency;
        sim::LatencyHistogram updateLatency;
    };

    YcsbDriver(sim::Simulator &sim, std::string name, RocksDbModel &db,
               YcsbConfig cfg);

    void start(std::function<void()> done = nullptr);
    bool finished() const { return _finished; }
    const Result &result() const { return _result; }

    /** Read fraction of a workload letter. */
    static double readFraction(char workload);

  private:
    void loop(int thread);

    RocksDbModel &_db;
    YcsbConfig _cfg;
    sim::Rng _rng;
    sim::ZipfianGenerator _zipf;

    bool _stopping = false;
    bool _finished = false;
    int _outstanding = 0;
    sim::Tick _measureStart = 0;
    sim::Tick _measureEnd = 0;
    Result _result;
    std::function<void()> _done;
};

} // namespace bms::apps

#endif // BMS_APPS_YCSB_HH
