#include "apps/ycsb.hh"

#include <utility>

namespace bms::apps {

YcsbDriver::YcsbDriver(sim::Simulator &sim, std::string name,
                       RocksDbModel &db, YcsbConfig cfg)
    : SimObject(sim, std::move(name)),
      _db(db),
      _cfg(cfg),
      _rng(sim.rng().fork()),
      _zipf(cfg.records, cfg.zipfTheta)
{
}

double
YcsbDriver::readFraction(char workload)
{
    switch (workload) {
      case 'A':
        return 0.5;
      case 'B':
        return 0.95;
      case 'C':
        return 1.0;
      default:
        BMS_PANIC("unsupported YCSB workload");
    }
}

void
YcsbDriver::start(std::function<void()> done)
{
    _done = std::move(done);
    _measureStart = now() + _cfg.rampTime;
    _measureEnd = _measureStart + _cfg.runTime;
    schedule(_cfg.rampTime + _cfg.runTime, [this] { _stopping = true; });
    for (int t = 0; t < _cfg.threads; ++t)
        loop(t);
}

void
YcsbDriver::loop(int thread)
{
    if (_stopping) {
        if (_outstanding == 0 && !_finished) {
            _finished = true;
            double secs = sim::toSec(_cfg.runTime);
            _result.opsPerSec =
                static_cast<double>(_result.reads + _result.updates) /
                secs;
            if (_done)
                _done();
        }
        return;
    }
    std::uint64_t key = _zipf.next(_rng);
    bool is_read = _rng.chance(readFraction(_cfg.workload));
    sim::Tick begun = now();
    ++_outstanding;
    auto complete = [this, thread, begun, is_read] {
        --_outstanding;
        if (now() >= _measureStart && now() <= _measureEnd) {
            if (is_read) {
                ++_result.reads;
                _result.readLatency.add(now() - begun);
            } else {
                ++_result.updates;
                _result.updateLatency.add(now() - begun);
            }
        }
        loop(thread);
    };
    if (is_read)
        _db.get(key, thread, std::move(complete));
    else
        _db.put(key, thread, std::move(complete));
}

} // namespace bms::apps
