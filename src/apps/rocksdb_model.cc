#include "apps/rocksdb_model.hh"

#include <utility>
#include <vector>

namespace bms::apps {

RocksDbModel::RocksDbModel(sim::Simulator &sim, std::string name,
                           host::BlockDeviceIf &dev, host::CpuSet &cpus,
                           Config cfg)
    : SimObject(sim, std::move(name)),
      _dev(dev),
      _cpus(cpus),
      _cfg(cfg),
      _rng(sim.rng().fork())
{
    // Layout: [WAL 1 GiB][SST region = rest].
    BMS_ASSERT(dev.capacityBytes() > sim::gib(2),
               "device too small for WAL + SST regions");
    _sstRegion = sim::gib(1);
    _sstBytes = dev.capacityBytes() - _sstRegion;
}

double
RocksDbModel::blockCacheHitRate() const
{
    std::uint64_t total = _cacheHits + _cacheMisses;
    return total ? static_cast<double>(_cacheHits) /
                       static_cast<double>(total)
                 : 0.0;
}

void
RocksDbModel::get(std::uint64_t key, int thread_hint,
                  std::function<void()> done)
{
    host::CpuCore &core = _cpus.pick(thread_hint);
    sim::Tick start = core.reserve(now(), _cfg.cpuPerOp);
    sim().scheduleAt(start + _cfg.cpuPerOp, [this, key, thread_hint,
                                             done = std::move(done)]() {
        // Block-cache hit probability approximated by the cached
        // fraction of the hot set; the zipfian workload concentrates
        // accesses so the effective hit rate is high for hot keys.
        double data_bytes = static_cast<double>(_cfg.keyCount) *
                            _cfg.valueBytes;
        double cache_frac =
            static_cast<double>(_cfg.blockCacheBytes) / data_bytes;
        // Hot keys (low index) are resident; cold keys miss.
        bool cached = key < static_cast<std::uint64_t>(
                                cache_frac * 3.0 *
                                static_cast<double>(_cfg.keyCount));
        // Bloom filters add occasional extra reads.
        int reads = cached ? 0 : 1;
        if (_rng.chance(_cfg.bloomFalsePositive))
            ++reads;
        if (reads == 0) {
            ++_cacheHits;
            done();
            return;
        }
        ++_cacheMisses;
        auto remaining = std::make_shared<int>(reads);
        for (int i = 0; i < reads; ++i) {
            ++_blockReads;
            host::BlockRequest req;
            req.op = host::BlockRequest::Op::Read;
            req.offset = _sstRegion +
                         (_rng.uniformInt(0, _sstBytes / _cfg.blockBytes -
                                                 1)) *
                             _cfg.blockBytes;
            req.len = _cfg.blockBytes;
            req.queueHint = thread_hint;
            req.done = [remaining, done](bool) {
                if (--*remaining == 0)
                    done();
            };
            _dev.submit(std::move(req));
        }
    });
}

void
RocksDbModel::put(std::uint64_t key, int thread_hint,
                  std::function<void()> done)
{
    (void)key;
    host::CpuCore &core = _cpus.pick(thread_hint);
    sim::Tick start = core.reserve(now(), _cfg.cpuPerOp);
    sim().scheduleAt(start + _cfg.cpuPerOp,
                     [this, done = std::move(done)]() mutable {
                         _memtableFill += _cfg.valueBytes + 24; // + key/meta
                         _walQueue.push_back(CommitWaiter{
                             _cfg.valueBytes + 24, std::move(done)});
                         pumpWal();
                         maybeFlushMemtable();
                     });
}

void
RocksDbModel::pumpWal()
{
    // Pipelined WAL (RocksDB's two-writer pipeline): up to two group
    // writes in flight, which decouples update latency from a single
    // serialized log stream.
    if (_walInFlight >= 2 || _walQueue.empty())
        return;
    std::uint64_t bytes = 0;
    std::vector<std::function<void()>> waiters;
    while (!_walQueue.empty()) {
        bytes += _walQueue.front().bytes;
        waiters.push_back(std::move(_walQueue.front().done));
        _walQueue.pop_front();
    }
    std::uint32_t len = static_cast<std::uint32_t>(
        ((bytes + 4095) / 4096) * 4096);
    if (_walCursor + len > sim::gib(1))
        _walCursor = 0;
    ++_walInFlight;
    ++_walWrites;
    host::BlockRequest req;
    req.op = host::BlockRequest::Op::Write;
    req.offset = _walCursor;
    req.len = len;
    _walCursor += len;
    req.done = [this, waiters = std::move(waiters)](bool) {
        --_walInFlight;
        for (const auto &w : waiters)
            w();
        pumpWal();
    };
    _dev.submit(std::move(req));
}

void
RocksDbModel::maybeFlushMemtable()
{
    if (_flushInFlight || _memtableFill < _cfg.memtableBytes)
        return;
    _flushInFlight = true;
    _memtableFill = 0;
    ++_flushes;
    // Flush: sequential write of the memtable as an L0 file.
    backgroundIo(0, _cfg.memtableBytes, [this] {
        _flushInFlight = false;
        ++_l0Files;
        maybeCompact();
        maybeFlushMemtable();
    });
}

void
RocksDbModel::maybeCompact()
{
    if (_compactionInFlight || _l0Files < _cfg.l0CompactionTrigger)
        return;
    _compactionInFlight = true;
    ++_compactions;
    // L0→L1: read all trigger files + an equal share of L1, write the
    // merged result (write amplification ~2x input here).
    std::uint64_t input = static_cast<std::uint64_t>(
                              _cfg.l0CompactionTrigger) *
                          _cfg.memtableBytes * 2;
    backgroundIo(input, input, [this] {
        _compactionInFlight = false;
        _l0Files -= _cfg.l0CompactionTrigger;
        maybeCompact();
    });
}

void
RocksDbModel::backgroundIo(std::uint64_t read_bytes,
                           std::uint64_t write_bytes,
                           std::function<void()> done)
{
    // Issue the work as a pipeline of compactionIoBytes chunks with a
    // small bounded queue so it behaves like a background thread, not
    // a burst.
    struct State
    {
        std::uint64_t readLeft;
        std::uint64_t writeLeft;
        int inflight = 0;
        std::function<void()> done;
    };
    BMS_ASSERT(read_bytes > 0 || write_bytes > 0,
               "background IO with no bytes would drop its completion");
    auto st = std::make_shared<State>();
    st->readLeft = read_bytes;
    st->writeLeft = write_bytes;
    st->done = std::move(done);

    auto pump = std::make_shared<std::function<void()>>();
    *pump = [this, st, pump] {
        while (st->inflight < 2 &&
               (st->readLeft > 0 || st->writeLeft > 0)) {
            bool do_read = st->readLeft >= st->writeLeft;
            std::uint64_t &left = do_read ? st->readLeft : st->writeLeft;
            std::uint32_t len = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(left, _cfg.compactionIoBytes));
            left -= len;
            ++st->inflight;
            host::BlockRequest req;
            req.op = do_read ? host::BlockRequest::Op::Read
                             : host::BlockRequest::Op::Write;
            _sstCursor = (_sstCursor + len) % (_sstBytes - sim::mib(4));
            req.offset = _sstRegion + _sstCursor;
            req.len = len;
            req.done = [st, pump](bool) {
                --st->inflight;
                if (st->readLeft == 0 && st->writeLeft == 0 &&
                    st->inflight == 0) {
                    auto fin = std::move(st->done);
                    // Break the pump→pump reference cycle (it would
                    // leak the closure and everything it captures);
                    // safe here because this completion callback is a
                    // separate function object from *pump.
                    *pump = nullptr;
                    fin();
                    return;
                }
                (*pump)();
            };
            _dev.submit(std::move(req));
        }
    };
    (*pump)();
}

} // namespace bms::apps
