#include "apps/sysbench.hh"

#include <utility>

namespace bms::apps {

SysbenchDriver::SysbenchDriver(sim::Simulator &sim, std::string name,
                               MySqlModel &db, SysbenchConfig cfg)
    : SimObject(sim, std::move(name)),
      _db(db),
      _cfg(cfg),
      _rng(sim.rng().fork())
{
}

void
SysbenchDriver::start(std::function<void()> done)
{
    _done = std::move(done);
    _measureStart = now() + _cfg.rampTime;
    _measureEnd = _measureStart + _cfg.runTime;
    schedule(_cfg.rampTime + _cfg.runTime, [this] { _stopping = true; });
    for (int t = 0; t < _cfg.threads; ++t)
        loop(t);
}

void
SysbenchDriver::loop(int thread)
{
    if (_stopping) {
        if (_outstanding == 0 && !_finished) {
            _finished = true;
            double secs = sim::toSec(_cfg.runTime);
            _result.tps =
                static_cast<double>(_result.transactions) / secs;
            _result.qps = static_cast<double>(_result.queries) / secs;
            if (_done)
                _done();
        }
        return;
    }
    // oltp_read_write: 10 point selects + 4 ranges (≈2 pages each) +
    // 4 updates (read-modify) + 2 inserts/deletes.
    TxnSpec spec;
    spec.pageReads = 10 + 4 * 2 + 4;
    spec.pageWrites = _cfg.readOnly ? 0 : 6;
    spec.logBytes = _cfg.readOnly ? 0 : 900;
    spec.commit = !_cfg.readOnly;

    sim::Tick begun = now();
    ++_outstanding;
    _db.executeTxn(spec, thread, [this, thread, begun] {
        --_outstanding;
        if (now() >= _measureStart && now() <= _measureEnd) {
            ++_result.transactions;
            _result.queries +=
                static_cast<std::uint64_t>(_cfg.queriesPerTxn);
            _result.latency.add(now() - begun);
        }
        loop(thread);
    });
}

} // namespace bms::apps
