/**
 * @file
 * MySQL/InnoDB storage-engine model.
 *
 * Models the parts of MySQL 5.7 whose behaviour the paper's TPC-C and
 * Sysbench results depend on — the storage I/O pattern:
 *
 *   - a buffer pool with true LRU over 16 KiB pages (misses become
 *     random 16 KiB reads);
 *   - a redo log with group commit (concurrent commits coalesce into
 *     one sequential log write, fsync'd);
 *   - a background flusher writing dirty pages back in batches, plus
 *     the doublewrite buffer (sequential prewrite before the
 *     scattered page writes);
 *   - per-query CPU time charged to a CpuSet (the VM's vCPUs).
 *
 * Query/transaction *logic* (SQL, locking) is out of scope: drivers
 * express transactions as page-read/page-write/log-byte counts, which
 * is the granularity at which local storage performance matters.
 */

#ifndef BMS_APPS_MYSQL_MODEL_HH
#define BMS_APPS_MYSQL_MODEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "host/block.hh"
#include "host/cpu.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace bms::apps {

/** InnoDB-ish engine configuration. */
struct MySqlConfig
{
    std::uint64_t dbBytes = sim::gib(10);        ///< ~100 warehouses
    std::uint64_t bufferPoolBytes = sim::gib(2); ///< paper VM: 4 GB RAM
    std::uint32_t pageBytes = 16 * 1024;
    bool doublewrite = true;
    /** Zipf skew of page accesses (hot rows / indexes). */
    double accessSkew = 0.92;
    /** Background flush batch and cadence. */
    int flushBatch = 64;
    sim::Tick flushPeriod = sim::milliseconds(10);
    /** Per-transaction CPU time (parse/optimize/execute). */
    sim::Tick cpuPerTxn = sim::microseconds(120);
};

/** One transaction's storage demand, as seen by the engine. */
struct TxnSpec
{
    int pageReads = 0;   ///< dependent (serial) page accesses
    int pageWrites = 0;  ///< pages dirtied
    std::uint32_t logBytes = 0;
    bool commit = true;  ///< fsync the redo log at the end
};

/** The storage engine bound to one block device. */
class MySqlModel : public sim::SimObject
{
  public:
    using Config = MySqlConfig;

    MySqlModel(sim::Simulator &sim, std::string name,
               host::BlockDeviceIf &dev, host::CpuSet &cpus, Config cfg);

    /**
     * Execute one transaction; @p done fires after its log write is
     * durable (or immediately after reads for read-only specs).
     */
    void executeTxn(const TxnSpec &spec, int thread_hint,
                    std::function<void()> done);

    /** @name Introspection / statistics. */
    /// @{
    double bufferPoolHitRate() const;
    std::uint64_t pageReadsIssued() const { return _pageReadsIssued; }
    std::uint64_t logWritesIssued() const { return _logWritesIssued; }
    std::uint64_t pagesFlushed() const { return _pagesFlushed; }
    std::uint64_t dirtyPages() const { return _dirty.size(); }
    /// @}

  private:
    struct CommitWaiter
    {
        std::uint32_t bytes;
        std::function<void()> done;
    };

    void readPages(int remaining, int hint, std::function<void()> then);
    void accessPage(std::uint64_t page, bool dirty, int hint,
                    std::function<void()> then);
    void touchLru(std::uint64_t page);
    void evictIfNeeded();
    void commitLog(std::uint32_t bytes, std::function<void()> done);
    void pumpLog();
    void flushTick();

    host::BlockDeviceIf &_dev;
    host::CpuSet &_cpus;
    Config _cfg;
    sim::Rng _rng;
    sim::ZipfianGenerator _zipf;

    std::uint64_t _dbPages;
    std::uint64_t _poolPages;

    // Buffer pool LRU: list of resident pages, most recent at front.
    std::list<std::uint64_t> _lru;
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
        _resident;
    std::unordered_set<std::uint64_t> _dirty;

    // Redo log.
    std::uint64_t _logCursor = 0;  ///< byte offset in the log region
    std::uint64_t _logRegion = 0;  ///< start of the circular log area
    std::uint64_t _logRegionBytes = sim::gib(1);
    bool _logWriteInFlight = false;
    std::deque<CommitWaiter> _commitQueue;

    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _pageReadsIssued = 0;
    std::uint64_t _logWritesIssued = 0;
    std::uint64_t _pagesFlushed = 0;
};

} // namespace bms::apps

#endif // BMS_APPS_MYSQL_MODEL_HH
