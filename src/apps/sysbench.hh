/**
 * @file
 * Sysbench OLTP driver for the MySQL model (paper Fig. 13(b) and
 * Table VIII: normalized queries/transactions and average latency).
 *
 * Models oltp_read_write: each transaction is 10 point selects,
 * 4 range queries, 4 index updates, 2 write queries, one commit —
 * 20 queries per transaction, matching sysbench accounting.
 */

#ifndef BMS_APPS_SYSBENCH_HH
#define BMS_APPS_SYSBENCH_HH

#include <cstdint>
#include <functional>
#include <string>

#include "apps/mysql_model.hh"
#include "sim/stats.hh"

namespace bms::apps {

/** Sysbench run parameters. */
struct SysbenchConfig
{
    int threads = 32;
    bool readOnly = false;
    sim::Tick rampTime = sim::milliseconds(50);
    sim::Tick runTime = sim::milliseconds(600);
    /** Queries accounted per transaction (sysbench oltp_read_write). */
    int queriesPerTxn = 20;
};

/** Closed-loop Sysbench OLTP load generator. */
class SysbenchDriver : public sim::SimObject
{
  public:
    struct Result
    {
        std::uint64_t transactions = 0;
        std::uint64_t queries = 0;
        double tps = 0.0;
        double qps = 0.0;
        sim::LatencyHistogram latency;
    };

    SysbenchDriver(sim::Simulator &sim, std::string name, MySqlModel &db,
                   SysbenchConfig cfg);

    void start(std::function<void()> done = nullptr);
    bool finished() const { return _finished; }
    const Result &result() const { return _result; }

  private:
    void loop(int thread);

    MySqlModel &_db;
    SysbenchConfig _cfg;
    sim::Rng _rng;

    bool _stopping = false;
    bool _finished = false;
    int _outstanding = 0;
    sim::Tick _measureStart = 0;
    sim::Tick _measureEnd = 0;
    Result _result;
    std::function<void()> _done;
};

} // namespace bms::apps

#endif // BMS_APPS_SYSBENCH_HH
