#include "apps/mysql_model.hh"

#include <algorithm>
#include <utility>

namespace bms::apps {

MySqlModel::MySqlModel(sim::Simulator &sim, std::string name,
                       host::BlockDeviceIf &dev, host::CpuSet &cpus,
                       Config cfg)
    : SimObject(sim, std::move(name)),
      _dev(dev),
      _cpus(cpus),
      _cfg(cfg),
      _rng(sim.rng().fork()),
      _zipf(cfg.dbBytes / cfg.pageBytes, cfg.accessSkew)
{
    _dbPages = cfg.dbBytes / cfg.pageBytes;
    _poolPages = cfg.bufferPoolBytes / cfg.pageBytes;
    BMS_ASSERT(_dbPages > _poolPages,
               "database must exceed buffer pool");
    // Device layout: [data pages][redo log region].
    BMS_ASSERT(dev.capacityBytes() > cfg.dbBytes + _logRegionBytes,
               "device too small for database + redo log");
    _logRegion = cfg.dbBytes;
    // Background flusher.
    schedule(_cfg.flushPeriod, [this] { flushTick(); });
}

double
MySqlModel::bufferPoolHitRate() const
{
    std::uint64_t total = _hits + _misses;
    return total ? static_cast<double>(_hits) /
                       static_cast<double>(total)
                 : 0.0;
}

void
MySqlModel::touchLru(std::uint64_t page)
{
    auto it = _resident.find(page);
    if (it != _resident.end()) {
        _lru.erase(it->second);
    }
    _lru.push_front(page);
    _resident[page] = _lru.begin();
    evictIfNeeded();
}

void
MySqlModel::evictIfNeeded()
{
    while (_lru.size() > _poolPages) {
        std::uint64_t victim = _lru.back();
        _lru.pop_back();
        _resident.erase(victim);
        // Clean evictions are free; a dirty victim was or will be
        // written by the flusher (keep it in the dirty set so the
        // flusher still writes it back).
    }
}

void
MySqlModel::accessPage(std::uint64_t page, bool dirty, int hint,
                       std::function<void()> then)
{
    if (dirty)
        _dirty.insert(page);
    if (_resident.count(page)) {
        ++_hits;
        touchLru(page);
        then();
        return;
    }
    ++_misses;
    ++_pageReadsIssued;
    host::BlockRequest req;
    req.op = host::BlockRequest::Op::Read;
    req.offset = page * _cfg.pageBytes;
    req.len = _cfg.pageBytes;
    req.queueHint = hint;
    req.done = [this, page, then = std::move(then)](bool ok) {
        (void)ok;
        touchLru(page);
        then();
    };
    _dev.submit(std::move(req));
}

void
MySqlModel::readPages(int remaining, int hint, std::function<void()> then)
{
    if (remaining <= 0) {
        then();
        return;
    }
    std::uint64_t page = _zipf.next(_rng);
    accessPage(page, false, hint,
               [this, remaining, hint, then = std::move(then)] {
                   readPages(remaining - 1, hint, std::move(then));
               });
}

void
MySqlModel::executeTxn(const TxnSpec &spec, int thread_hint,
                       std::function<void()> done)
{
    // Charge query CPU; storage work begins once the core reaches it.
    host::CpuCore &core = _cpus.pick(thread_hint);
    sim::Tick start = core.reserve(now(), _cfg.cpuPerTxn);
    sim().scheduleAt(
        start + _cfg.cpuPerTxn,
        [this, spec, thread_hint, done = std::move(done)]() mutable {
            // Dependent reads first (index traversals).
            readPages(spec.pageReads, thread_hint,
                      [this, spec, thread_hint,
                       done = std::move(done)]() mutable {
                          // Dirty the written pages (in-pool update;
                          // read-for-update counted in pageReads).
                          for (int i = 0; i < spec.pageWrites; ++i) {
                              std::uint64_t page = _zipf.next(_rng);
                              _dirty.insert(page);
                              touchLru(page);
                          }
                          if (!spec.commit || spec.logBytes == 0) {
                              done();
                              return;
                          }
                          commitLog(spec.logBytes, std::move(done));
                      });
        });
}

void
MySqlModel::commitLog(std::uint32_t bytes, std::function<void()> done)
{
    _commitQueue.push_back(CommitWaiter{bytes, std::move(done)});
    pumpLog();
}

void
MySqlModel::pumpLog()
{
    if (_logWriteInFlight || _commitQueue.empty())
        return;
    // Group commit: coalesce every waiting commit into one write.
    std::uint64_t bytes = 0;
    std::vector<std::function<void()>> waiters;
    while (!_commitQueue.empty()) {
        bytes += _commitQueue.front().bytes;
        waiters.push_back(std::move(_commitQueue.front().done));
        _commitQueue.pop_front();
    }
    // Round to whole blocks (512 B sectors in reality; 4 KiB here).
    std::uint32_t len = static_cast<std::uint32_t>(
        ((bytes + 4095) / 4096) * 4096);
    if (_logCursor + len > _logRegionBytes)
        _logCursor = 0;

    _logWriteInFlight = true;
    ++_logWritesIssued;
    host::BlockRequest req;
    req.op = host::BlockRequest::Op::Write;
    req.offset = _logRegion + _logCursor;
    req.len = len;
    _logCursor += len;
    req.done = [this, waiters = std::move(waiters)](bool ok) {
        (void)ok;
        _logWriteInFlight = false;
        for (const auto &w : waiters)
            w();
        pumpLog();
    };
    _dev.submit(std::move(req));
}

void
MySqlModel::flushTick()
{
    // Write back up to flushBatch dirty pages; doublewrite prepends
    // one sequential batch write. The batch is picked in ascending
    // page order, not hash order: which pages flush (and the write
    // offsets issued) must not depend on libstdc++'s bucket layout.
    if (!_dirty.empty()) {
        // BMS_LINT_ALLOW(unordered-iter): drained into a sorted batch
        std::vector<std::uint64_t> all(_dirty.begin(), _dirty.end());
        std::sort(all.begin(), all.end());
        if (all.size() > static_cast<std::size_t>(_cfg.flushBatch))
            all.resize(static_cast<std::size_t>(_cfg.flushBatch));
        std::vector<std::uint64_t> batch = std::move(all);
        for (std::uint64_t page : batch)
            _dirty.erase(page);
        auto issue_pages = [this, batch] {
            for (std::uint64_t page : batch) {
                ++_pagesFlushed;
                host::BlockRequest req;
                req.op = host::BlockRequest::Op::Write;
                req.offset = page * _cfg.pageBytes;
                req.len = _cfg.pageBytes;
                _dev.submit(std::move(req));
            }
        };
        if (_cfg.doublewrite) {
            host::BlockRequest dw;
            dw.op = host::BlockRequest::Op::Write;
            dw.offset = _logRegion + _logRegionBytes - sim::mib(2);
            dw.len = static_cast<std::uint32_t>(batch.size() *
                                                _cfg.pageBytes);
            dw.done = [issue_pages](bool) { issue_pages(); };
            _dev.submit(std::move(dw));
        } else {
            issue_pages();
        }
    }
    schedule(_cfg.flushPeriod, [this] { flushTick(); });
}

} // namespace bms::apps
