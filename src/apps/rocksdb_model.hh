/**
 * @file
 * RocksDB LSM-tree storage model (for the YCSB experiments).
 *
 * Models the I/O-relevant machinery of RocksDB 6.x:
 *
 *   - write path: WAL append (group commit) + memtable insert;
 *     memtable fill triggers a flush to L0 (sequential 1 MiB writes);
 *   - background compaction: when L0 accumulates enough files, an
 *     L0→L1 compaction reads both inputs sequentially and writes the
 *     merged output, competing with foreground I/O;
 *   - read path: memtable / block-cache hit, else one 4 KiB data
 *     block read from the owning level (bloom filters suppress reads
 *     from non-owning levels with a small false-positive rate).
 */

#ifndef BMS_APPS_ROCKSDB_MODEL_HH
#define BMS_APPS_ROCKSDB_MODEL_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "host/block.hh"
#include "host/cpu.hh"
#include "sim/random.hh"
#include "sim/simulator.hh"

namespace bms::apps {

/** LSM configuration. */
struct RocksDbConfig
{
    std::uint64_t keyCount = 10'000'000;
    std::uint32_t valueBytes = 1000;   ///< YCSB default record size
    std::uint64_t memtableBytes = sim::mib(64);
    std::uint64_t blockCacheBytes = sim::mib(512);
    std::uint32_t blockBytes = 4096;
    int l0CompactionTrigger = 4;
    double bloomFalsePositive = 0.01;
    /** CPU per operation (memtable/skiplist, comparator). */
    sim::Tick cpuPerOp = sim::microseconds(12);
    /** Compaction I/O chunk. */
    std::uint32_t compactionIoBytes = sim::mib(1);
};

/** RocksDB instance bound to one block device. */
class RocksDbModel : public sim::SimObject
{
  public:
    using Config = RocksDbConfig;

    RocksDbModel(sim::Simulator &sim, std::string name,
                 host::BlockDeviceIf &dev, host::CpuSet &cpus,
                 Config cfg);

    /** Point lookup of a key (index from the workload generator). */
    void get(std::uint64_t key, int thread_hint,
             std::function<void()> done);

    /** Upsert of a key. @p done fires when the WAL write is durable. */
    void put(std::uint64_t key, int thread_hint,
             std::function<void()> done);

    /** @name Statistics. */
    /// @{
    std::uint64_t walWrites() const { return _walWrites; }
    std::uint64_t memtableFlushes() const { return _flushes; }
    std::uint64_t compactions() const { return _compactions; }
    std::uint64_t blockReads() const { return _blockReads; }
    double blockCacheHitRate() const;
    /// @}

  private:
    struct CommitWaiter
    {
        std::uint32_t bytes;
        std::function<void()> done;
    };

    void pumpWal();
    void maybeFlushMemtable();
    void maybeCompact();
    void backgroundIo(std::uint64_t read_bytes, std::uint64_t write_bytes,
                      std::function<void()> done);

    host::BlockDeviceIf &_dev;
    host::CpuSet &_cpus;
    Config _cfg;
    sim::Rng _rng;

    std::uint64_t _memtableFill = 0;
    bool _flushInFlight = false;
    int _l0Files = 0;
    bool _compactionInFlight = false;

    // WAL group commit (pipelined, up to two writes in flight).
    std::uint64_t _walCursor = 0;
    int _walInFlight = 0;
    std::deque<CommitWaiter> _walQueue;

    // Device layout cursors.
    std::uint64_t _sstRegion;   ///< where SST data lives
    std::uint64_t _sstBytes;
    std::uint64_t _sstCursor = 0;

    std::uint64_t _walWrites = 0;
    std::uint64_t _flushes = 0;
    std::uint64_t _compactions = 0;
    std::uint64_t _blockReads = 0;
    std::uint64_t _cacheHits = 0;
    std::uint64_t _cacheMisses = 0;
};

} // namespace bms::apps

#endif // BMS_APPS_ROCKSDB_MODEL_HH
