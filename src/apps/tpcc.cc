#include "apps/tpcc.hh"

#include <utility>

namespace bms::apps {

TpccDriver::TpccDriver(sim::Simulator &sim, std::string name,
                       MySqlModel &db, TpccConfig cfg)
    : SimObject(sim, std::move(name)),
      _db(db),
      _cfg(cfg),
      _rng(sim.rng().fork())
{
}

TpccDriver::Profile
TpccDriver::pickProfile()
{
    double d = _rng.uniform01() * 100.0;
    if (d < 45.0)
        return Profile::NewOrder;
    if (d < 88.0)
        return Profile::Payment;
    if (d < 92.0)
        return Profile::OrderStatus;
    if (d < 96.0)
        return Profile::Delivery;
    return Profile::StockLevel;
}

TxnSpec
TpccDriver::specFor(Profile p)
{
    TxnSpec s;
    switch (p) {
      case Profile::NewOrder:
        // ~10 items: stock + item + district reads, order-line writes.
        s.pageReads = static_cast<int>(_rng.uniformInt(12, 18));
        s.pageWrites = 8;
        s.logBytes = 1500;
        break;
      case Profile::Payment:
        s.pageReads = static_cast<int>(_rng.uniformInt(4, 6));
        s.pageWrites = 3;
        s.logBytes = 600;
        break;
      case Profile::OrderStatus:
        s.pageReads = static_cast<int>(_rng.uniformInt(5, 8));
        s.pageWrites = 0;
        s.logBytes = 0;
        s.commit = false;
        break;
      case Profile::Delivery:
        s.pageReads = static_cast<int>(_rng.uniformInt(24, 40));
        s.pageWrites = 15;
        s.logBytes = 2500;
        break;
      case Profile::StockLevel:
        s.pageReads = static_cast<int>(_rng.uniformInt(40, 60));
        s.pageWrites = 0;
        s.logBytes = 0;
        s.commit = false;
        break;
    }
    return s;
}

void
TpccDriver::start(std::function<void()> done)
{
    _done = std::move(done);
    _measureStart = now() + _cfg.rampTime;
    _measureEnd = _measureStart + _cfg.runTime;
    schedule(_cfg.rampTime + _cfg.runTime, [this] { _stopping = true; });
    for (int t = 0; t < _cfg.threads; ++t)
        loop(t);
}

void
TpccDriver::loop(int thread)
{
    if (_stopping) {
        if (_outstanding == 0 && !_finished) {
            _finished = true;
            double secs = sim::toSec(_cfg.runTime);
            _result.tps =
                static_cast<double>(_result.transactions) / secs;
            _result.tpmC =
                static_cast<double>(_result.newOrders) / secs * 60.0;
            if (_done)
                _done();
        }
        return;
    }
    Profile p = pickProfile();
    TxnSpec spec = specFor(p);
    sim::Tick begun = now();
    ++_outstanding;
    _db.executeTxn(spec, thread, [this, thread, p, begun] {
        --_outstanding;
        if (now() >= _measureStart && now() <= _measureEnd) {
            ++_result.transactions;
            if (p == Profile::NewOrder)
                ++_result.newOrders;
            _result.latency.add(now() - begun);
        }
        loop(thread);
    });
}

} // namespace bms::apps
