/**
 * @file
 * Rolling-ops half of the FleetManager: fleet-wide firmware upgrades
 * and lossless disk replacements, card by card, slot by slot, under
 * a failure budget with pause/resume/abort.
 *
 * The wave machine is fully event-driven (each per-slot op is one
 * console verb whose completion schedules the next), so a wave
 * interleaves with tenant I/O, fault drills and admissions exactly
 * as it would on a production fleet.
 */

#include "fleet/fleet_manager.hh"

#include "sim/check.hh"

namespace bms::fleet {

void
FleetManager::startWave(const WaveConfig &cfg)
{
    BMS_ASSERT(_wave.state != WaveState::Running &&
                   _wave.state != WaveState::Paused,
               "a wave is already in flight");
    _waveCfg = cfg;
    _wave = WaveReport{};
    _wave.state = WaveState::Running;
    _waveCard = 0;
    _waveSlot = 0;
    _waveBudget = cfg.failureBudget;
    _waveStart = _sim->now();
    _worstGapSeen = 0;
    record(std::string("wave start: ") +
           (cfg.op == WaveOp::FirmwareUpgrade ? "firmware" : "replace") +
           " budget=" + std::to_string(cfg.failureBudget));
    waveNextOp();
}

void
FleetManager::resumeWave(int freshBudget)
{
    BMS_ASSERT(_wave.state == WaveState::Paused,
               "resume without a paused wave");
    _waveBudget = freshBudget;
    _wave.state = WaveState::Running;
    record("wave resume: budget=" + std::to_string(freshBudget));
    waveNextOp();
}

void
FleetManager::abortWave()
{
    BMS_ASSERT(_wave.state == WaveState::Paused,
               "abort is an operator decision on a paused wave");
    _wave.state = WaveState::Aborted;
    _wave.makespan = _sim->now() - _waveStart;
    record("wave ABORTED");
}

void
FleetManager::waveNextOp()
{
    if (_waveCard >= cards()) {
        _wave.state = WaveState::Done;
        _wave.makespan = _sim->now() - _waveStart;
        record("wave done: ok=" + std::to_string(_wave.opsOk) +
               " failed=" + std::to_string(_wave.opsFailed) +
               " gate-trips=" + std::to_string(_wave.gateTrips));
        return;
    }
    int card_ix = _waveCard;
    int slot = _waveSlot;
    core::Eid eid = ctrlEid(card_ix);
    record("wave op card=" + std::to_string(card_ix) +
           " slot=" + std::to_string(slot));
    if (_waveCfg.op == WaveOp::FirmwareUpgrade) {
        card(card_ix).console().firmwareUpgrade(
            eid, static_cast<std::uint8_t>(slot), _waveCfg.imageBytes,
            [this](core::MiUpgradeResult r) {
                waveOpDone(r.ok, r.ioPauseMs, 0);
            });
    } else {
        card(card_ix).console().hotPlug(
            eid, static_cast<std::uint8_t>(slot),
            [this](core::MiHotPlugResult r) {
                waveOpDone(r.ok, r.ioPauseMs, r.evacuatedChunks);
            },
            /*lossless=*/true);
    }
}

void
FleetManager::waveOpDone(bool ok, double io_pause_ms,
                         std::uint64_t evacuated)
{
    // Advance the position first: a failed op is consumed by the
    // budget, not retried verbatim on resume.
    _waveSlot += 1;
    if (_waveSlot >= _cfg.ssdsPerCard) {
        _waveSlot = 0;
        _waveCard += 1;
        _wave.cardsDone += 1;
    }

    int strikes = 0;
    if (ok) {
        _wave.opsOk += 1;
    } else {
        _wave.opsFailed += 1;
        ++strikes;
        record("wave op FAILED");
    }
    if (io_pause_ms > _wave.ioPauseMsMax)
        _wave.ioPauseMsMax = io_pause_ms;
    _wave.evacuatedChunks += evacuated;

    // Per-tenant availability gate: a NEW worst completion gap above
    // the bound is one strike (a single stall must not bleed strikes
    // for the rest of the wave).
    if (_availabilityProbe && _waveCfg.availabilityBound > 0) {
        sim::Tick gap = _availabilityProbe();
        if (gap > _waveCfg.availabilityBound && gap > _worstGapSeen) {
            _wave.gateTrips += 1;
            ++strikes;
            record("wave gate trip: gap=" +
                   std::to_string(sim::toMs(gap)) + "ms");
        }
        if (gap > _worstGapSeen)
            _worstGapSeen = gap;
    }

    _waveBudget -= strikes;
    if (strikes > 0 && _waveBudget < 0) {
        _wave.state = WaveState::Paused;
        _wave.pauses += 1;
        record("wave PAUSED: failure budget exhausted");
        return;
    }
    waveNextOp();
}

} // namespace bms::fleet
