/**
 * @file
 * FleetManager — the operator-grade control plane over N BM-Store
 * cards sharing one deterministic simulation.
 *
 * Three responsibilities (DESIGN.md §15):
 *
 *   - placement: admit tenant requests onto the card with the best
 *     chunk headroom, read through each card's `df` verb at admission
 *     time, honouring anti-affinity groups, thin-overcommit caps and
 *     the per-card function budget;
 *   - rolling ops: fleet-wide firmware hot-upgrades and lossless
 *     disk replacements, card by card and slot by slot, under a
 *     failure budget with pause/resume/abort semantics and a
 *     per-tenant availability gate;
 *   - fleet faults: correlated SSD fault windows, storage-node
 *     losses recovered through `failNode`, and upgrade storms that
 *     must bounce off the controllers' re-entrancy guard.
 *
 * Every operator action appends to a tick-stamped op trace whose FNV
 * hash is the fleet's determinism fingerprint: same seed, same
 * schedule → byte-identical trace.
 */

#ifndef BMS_FLEET_FLEET_MANAGER_HH
#define BMS_FLEET_FLEET_MANAGER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fleet/fleet.hh"
#include "harness/testbeds.hh"

namespace bms::fleet {

/** N cards, one simulation, one operator. */
class FleetManager
{
  public:
    explicit FleetManager(const FleetConfig &cfg);
    ~FleetManager();

    sim::Simulator &sim() { return *_sim; }
    const FleetConfig &config() const { return _cfg; }
    int cards() const { return static_cast<int>(_cards.size()); }
    harness::BmStoreTestbed &card(int i) { return *_cards.at(i); }

    /** Tenants admitted fleet-wide (successful placements). */
    int tenants() const { return _tenantCount; }
    int tenantsOn(int card) const;

    /**
     * Admit one tenant: query `df` on every card, pick the best
     * placement, create the namespace through the console and bring
     * up the tenant's NVMe driver. Pumps the simulation to
     * completion (admission is the operator's synchronous buy path;
     * call from outside event handlers only).
     *
     * Refusals (no capacity, anti-affinity unsatisfiable, function
     * budget exhausted, overcommit cap hit) return ok=false with the
     * reason — they are legal outcomes, not errors.
     */
    Placement admit(const TenantRequest &req);

    /** Driver of a placed tenant (for oracles/workloads). */
    host::NvmeDriver &tenantDriver(int card, std::uint8_t fn);

    /** @name Rolling operations. */
    /// @{
    /**
     * Start a wave. Ops run card by card (slot by slot within a
     * card) so at most one slot fleet-wide is ever degraded by the
     * wave itself. Asynchronous: pump the simulation until
     * waveState() leaves Running.
     */
    void startWave(const WaveConfig &cfg);

    /** Continue a Paused wave with @p freshBudget more failures. */
    void resumeWave(int freshBudget);

    /** Abandon a Paused wave. */
    void abortWave();

    WaveState waveState() const { return _wave.state; }
    const WaveReport &waveReport() const { return _wave; }

    /**
     * Per-tenant availability probe the wave gate calls after every
     * slot op; return the worst submit→complete gap observed so far
     * (the harness wires it to its workloads' maxCompletionGap).
     * Unset → the gate only counts verb failures.
     */
    void setAvailabilityProbe(std::function<sim::Tick()> probe)
    {
        _availabilityProbe = std::move(probe);
    }
    /// @}

    /** @name Fleet faults. */
    /// @{
    /**
     * Schedule a correlated failure drill: fault windows opened on
     * every hit card's SSDs at drill.at, closed at
     * drill.at + drill.duration, with optional node losses (failNode
     * verb) and an upgrade storm. onFaultWindow(card, open) lets the
     * harness excuse tenant errors on hit cards (oracle
     * setFaultsActive).
     */
    void scheduleDrill(const FaultDrill &drill);

    void setFaultWindowHook(std::function<void(int, bool)> hook)
    {
        _onFaultWindow = std::move(hook);
    }

    std::uint32_t nodeLossesRecovered() const { return _nodeLosses; }
    std::uint32_t stormRejections() const { return _stormRejections; }
    std::uint32_t faultWindowsOpened() const { return _faultWindows; }
    /** True once every drill-issued console verb has completed. */
    bool drillIdle() const { return _pendingDrillOps == 0; }
    /// @}

    /** @name Determinism fingerprint. */
    /// @{
    const std::vector<std::string> &trace() const { return _trace; }
    /** FNV-1a over the tick-stamped op trace. */
    std::uint64_t traceHash() const;
    /// @}

  private:
    struct TenantRecord
    {
        int card = -1;
        std::uint8_t fn = 0;
        std::uint32_t nsid = 0;
        int antiAffinityGroup = -1;
        bool thin = false;
        std::uint64_t chunks = 0; ///< logical chunks promised
        host::NvmeDriver *driver = nullptr;
    };

    struct CardState
    {
        int nextFn = 0; ///< next unassigned front-end function
        std::uint64_t logicalChunks = 0; ///< promised by admissions
        double committedIops = 0.0;      ///< sum of admitted limits
    };

    /** Collected `df` snapshot of one card. */
    struct DfSnapshot
    {
        bool valid = false;
        std::uint64_t totalChunks = 0;
        std::uint64_t freeChunks = 0;
        std::uint64_t logicalChunks = 0;
        bool anyQuiesced = false;
    };

    void record(const std::string &what);
    void pumpUntil(const std::function<bool()> &done,
                   sim::Tick timeout = sim::seconds(20));
    core::Eid ctrlEid(int card);

    // placement.cc
    DfSnapshot queryDf(int card);
    std::vector<DfSnapshot> queryDfAll();
    int pickCard(const TenantRequest &req,
                 const std::vector<DfSnapshot> &df, std::string &why);

    // rolling.cc
    void waveNextOp();
    void waveOpDone(bool ok, double io_pause_ms,
                    std::uint64_t evacuated);

    // faults.cc
    void openDrillWindow(const FaultDrill &drill);
    void closeDrillWindow(const FaultDrill &drill);
    bool drillHits(const FaultDrill &drill, int card) const;

    FleetConfig _cfg;
    std::unique_ptr<sim::Simulator> _sim;
    std::vector<std::unique_ptr<harness::BmStoreTestbed>> _cards;
    std::vector<CardState> _cardState;
    std::vector<TenantRecord> _tenants;
    int _tenantCount = 0;

    WaveConfig _waveCfg;
    WaveReport _wave;
    int _waveCard = 0;
    int _waveSlot = 0;
    int _waveBudget = 0;
    sim::Tick _waveStart = 0;
    sim::Tick _worstGapSeen = 0;
    std::function<sim::Tick()> _availabilityProbe;

    std::function<void(int, bool)> _onFaultWindow;
    std::uint32_t _nodeLosses = 0;
    std::uint32_t _stormRejections = 0;
    std::uint32_t _faultWindows = 0;
    int _pendingDrillOps = 0;

    std::vector<std::string> _trace;
};

} // namespace bms::fleet

#endif // BMS_FLEET_FLEET_MANAGER_HH
