/**
 * @file
 * Placement half of the FleetManager: `df`-driven headroom scoring
 * with anti-affinity, thin-overcommit and QoS-budget filters.
 */

#include "fleet/fleet_manager.hh"

#include "sim/check.hh"

namespace bms::fleet {

FleetManager::DfSnapshot
FleetManager::queryDf(int card)
{
    DfSnapshot snap;
    bool done = false;
    this->card(card).console().df(
        ctrlEid(card), [&snap, &done](std::vector<core::MiDfEntry> df) {
            for (const core::MiDfEntry &e : df) {
                snap.totalChunks += e.totalChunks;
                snap.freeChunks += e.freeChunks;
                snap.logicalChunks += e.logicalChunks;
                snap.anyQuiesced = snap.anyQuiesced || e.quiesced;
            }
            snap.valid = true;
            done = true;
        });
    pumpUntil([&done] { return done; });
    return snap;
}

std::vector<FleetManager::DfSnapshot>
FleetManager::queryDfAll()
{
    // Issue every card's `df` before pumping once: each card has its
    // own MCTP channel, so the queries overlap instead of serialising
    // N console round-trips per admission.
    std::vector<DfSnapshot> out(static_cast<std::size_t>(cards()));
    int pending = cards();
    for (int c = 0; c < cards(); ++c) {
        DfSnapshot *snap = &out[static_cast<std::size_t>(c)];
        card(c).console().df(
            ctrlEid(c),
            [snap, &pending](std::vector<core::MiDfEntry> df) {
                for (const core::MiDfEntry &e : df) {
                    snap->totalChunks += e.totalChunks;
                    snap->freeChunks += e.freeChunks;
                    snap->logicalChunks += e.logicalChunks;
                    snap->anyQuiesced = snap->anyQuiesced || e.quiesced;
                }
                snap->valid = true;
                --pending;
            });
    }
    pumpUntil([&pending] { return pending == 0; });
    return out;
}

int
FleetManager::pickCard(const TenantRequest &req,
                       const std::vector<DfSnapshot> &df,
                       std::string &why)
{
    std::uint64_t chunks =
        (req.bytes + _cfg.chunkBytes - 1) / _cfg.chunkBytes;
    double req_iops = qosLimitsFor(req.qos).iopsLimit;

    int best = -1;
    std::uint64_t best_score = 0;
    // Track the dominant refusal so an admission failure names the
    // binding constraint, not just "no".
    int fn_full = 0, affinity = 0, capacity = 0, overcommit = 0;
    int qos_full = 0, quiesced = 0;

    for (int c = 0; c < cards(); ++c) {
        const DfSnapshot &d = df[static_cast<std::size_t>(c)];
        const CardState &st = _cardState[static_cast<std::size_t>(c)];
        if (!d.valid || d.anyQuiesced) {
            // A quiesced slot means the card is mid-replacement; the
            // operator routes new business around it.
            ++quiesced;
            continue;
        }
        if (st.nextFn >= _cfg.maxTenantsPerCard) {
            ++fn_full;
            continue;
        }
        if (st.committedIops + req_iops > _cfg.cardIopsBudget) {
            ++qos_full;
            continue;
        }
        bool conflict = false;
        if (req.antiAffinityGroup >= 0) {
            for (const TenantRecord &t : _tenants) {
                if (t.card == c &&
                    t.antiAffinityGroup == req.antiAffinityGroup) {
                    conflict = true;
                    break;
                }
            }
        }
        if (conflict) {
            ++affinity;
            continue;
        }
        // Thick tenants reserve physical chunks now; thin tenants
        // only promise them, bounded by the overcommit cap. Both
        // count toward the logical (promised) load.
        if (!req.thin && d.freeChunks < chunks) {
            ++capacity;
            continue;
        }
        double cap_chunks =
            _cfg.overcommitCap * static_cast<double>(d.totalChunks);
        if (static_cast<double>(d.logicalChunks + chunks) > cap_chunks) {
            ++overcommit;
            continue;
        }
        // Headroom score: physical free chunks for thick requests,
        // remaining promise budget for thin ones. Ties break toward
        // the lowest card index — deterministic either way.
        std::uint64_t score =
            req.thin ? static_cast<std::uint64_t>(cap_chunks) -
                           d.logicalChunks
                     : d.freeChunks;
        if (best < 0 || score > best_score) {
            best = c;
            best_score = score;
        }
    }

    if (best < 0) {
        why = "no card admits the request (quiesced=" +
              std::to_string(quiesced) +
              " fn-budget=" + std::to_string(fn_full) +
              " qos-budget=" + std::to_string(qos_full) +
              " anti-affinity=" + std::to_string(affinity) +
              " capacity=" + std::to_string(capacity) +
              " overcommit=" + std::to_string(overcommit) + ")";
    }
    return best;
}

} // namespace bms::fleet
