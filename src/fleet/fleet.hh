/**
 * @file
 * Fleet-level configuration and operator-facing types.
 *
 * A fleet is N BM-Store cards inside ONE deterministic simulation
 * (TestbedConfig::sharedSim), operated the way a cloud control plane
 * operates real cards: exclusively through each card's out-of-band
 * NVMe-MI console verbs. Nothing in src/fleet reaches into a card's
 * engine or controller objects on the data path — placement reads
 * `df` (0xCA), waves drive `firmwareUpgrade` (0xC4) and `hotPlug`
 * (0xC5), fault recovery uses `failNode` (0xCD), and so on.
 */

#ifndef BMS_FLEET_FLEET_HH
#define BMS_FLEET_FLEET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine/qos.hh"
#include "sim/types.hh"

namespace bms::fleet {

/** QoS service classes sold by the operator (maps to QosLimits). */
enum class QosClass : std::uint8_t
{
    Bronze, ///< best effort, modest IOPS cap
    Silver, ///< mid cap
    Gold,   ///< high cap
};

/** Per-class limits; generous enough not to throttle fuzz drains. */
core::QosLimits qosLimitsFor(QosClass cls);

/** One tenant admission request (what a buy-API call carries). */
struct TenantRequest
{
    std::uint64_t bytes = 0;
    QosClass qos = QosClass::Bronze;
    /** Thin namespaces promise bytes without reserving chunks. */
    bool thin = false;
    /**
     * Anti-affinity group (-1 = none): two tenants of the same group
     * never land on the same card — a replicated database's nodes
     * must not share a blast radius.
     */
    int antiAffinityGroup = -1;
};

/** Outcome of one placement decision. */
struct Placement
{
    bool ok = false;
    int card = -1;
    std::uint8_t fn = 0;      ///< front-end function on the card
    std::uint32_t nsid = 0;
    std::uint64_t freeChunksAtAdmit = 0; ///< chosen card's headroom
    std::string reason;       ///< failure reason when !ok
};

/** Fleet-wide sizing and per-card shape. */
struct FleetConfig
{
    int cards = 4;
    int ssdsPerCard = 2; ///< >= 2 keeps lossless replacement possible
    std::uint64_t seed = 1;
    /**
     * Shrunk card geometry: fleet runs trade per-card capacity for
     * card count so tens of cards and thousands of namespaces fit
     * one event queue. 256 MiB SSDs in 4 MiB chunks give 64 chunks
     * per slot — plenty of placement texture.
     */
    std::uint64_t ssdCapacityBytes = sim::mib(256);
    std::uint64_t chunkBytes = sim::mib(4);
    /** Small driver shape: admission cost is dominated by driver
     *  bring-up, and fleet tenants are probes, not fio rigs. */
    std::uint16_t ioQueues = 1;
    std::uint16_t queueDepth = 64;
    /**
     * Overcommit cap: logical (promised) chunks per card may reach
     * this multiple of physical chunks before thin admissions are
     * refused. 1.0 disables overcommit.
     */
    double overcommitCap = 2.0;
    /** Function budget per card (4 PFs + up to 124 VFs). */
    int maxTenantsPerCard = 128;
    /**
     * QoS headroom: the sum of admitted tenants' IOPS limits on one
     * card may not exceed this budget (the modeled card ceiling; the
     * paper's card saturates around 2 MIOPS, we leave margin).
     */
    double cardIopsBudget = 1'600'000.0;
    /**
     * Firmware activation stall, fleet-scaled: the P4510's real
     * 5.9-8.8 s window would make a 32-card wave dominate every
     * horizon; production fleets stagger activations anyway.
     */
    sim::Tick fwActivateMin = sim::milliseconds(150);
    sim::Tick fwActivateMax = sim::milliseconds(250);
    /** Remote storage nodes behind each card (node-loss drills). */
    int remoteNodesPerCard = 0;
    bool perLaneEvents = true;
};

/** Rolling-wave operation kind. */
enum class WaveOp : std::uint8_t
{
    FirmwareUpgrade,    ///< 0xC4 per slot, card by card
    LosslessReplace,    ///< 0xC5 lossless per slot, card by card
};

/** One rolling wave's parameters. */
struct WaveConfig
{
    WaveOp op = WaveOp::FirmwareUpgrade;
    std::uint32_t imageBytes = 1u << 20;
    /**
     * Failure budget: verb failures plus availability-gate trips the
     * wave may absorb before pausing. The operator resumes with a
     * fresh budget (after fixing the cause) or aborts.
     */
    int failureBudget = 0;
    /**
     * Per-tenant availability gate, checked after every per-slot op:
     * the longest submit→complete gap any tenant saw so far must stay
     * under this bound (0 disables the gate). The paper's hot-upgrade
     * transparency claim, enforced fleet-wide.
     */
    sim::Tick availabilityBound = 0;
};

/** Where a paused/finished wave stands. */
enum class WaveState : std::uint8_t
{
    Idle,
    Running,
    Paused,  ///< failure budget exhausted; resume() continues
    Aborted, ///< operator gave up
    Done,
};

/** Wave outcome (valid once state() is Done/Aborted). */
struct WaveReport
{
    WaveState state = WaveState::Idle;
    int cardsDone = 0;
    std::uint32_t opsOk = 0;
    std::uint32_t opsFailed = 0;
    std::uint32_t gateTrips = 0;
    std::uint32_t pauses = 0;
    /** Ticks from wave start to completion (pause time included). */
    sim::Tick makespan = 0;
    double ioPauseMsMax = 0.0; ///< worst per-slot I/O pause reported
    std::uint64_t evacuatedChunks = 0; ///< lossless waves only
};

/** A correlated failure drill injected mid-wave. */
struct FaultDrill
{
    /** Cards hit (every stride-th card starting at first). */
    int firstCard = 0;
    int cardStride = 2;
    sim::Tick at = 0;
    sim::Tick duration = sim::milliseconds(20);
    double readErrorRate = 0.01;
    double writeErrorRate = 0.01;
    double latencySpikeRate = 0.02;
    /** Also declare storage node 0 of each hit card dead (failNode
     *  verb) — requires remoteNodesPerCard > 0. */
    bool loseNode = false;
    /** Fire a redundant concurrent upgrade at each hit card (upgrade
     *  storm); the controller must reject it cleanly. */
    bool upgradeStorm = false;
};

} // namespace bms::fleet

#endif // BMS_FLEET_FLEET_HH
