/**
 * @file
 * Fleet-fault half of the FleetManager: correlated SSD fault
 * windows, storage-node losses recovered through the failNode verb,
 * and upgrade storms bounced off the controllers' re-entrancy guard.
 */

#include "fleet/fleet_manager.hh"

#include "sim/check.hh"
#include "ssd/ssd_device.hh"

namespace bms::fleet {

bool
FleetManager::drillHits(const FaultDrill &drill, int card) const
{
    if (card < drill.firstCard)
        return false;
    int stride = drill.cardStride < 1 ? 1 : drill.cardStride;
    return (card - drill.firstCard) % stride == 0;
}

void
FleetManager::scheduleDrill(const FaultDrill &drill)
{
    BMS_ASSERT(!drill.loseNode || _cfg.remoteNodesPerCard > 0,
               "node-loss drill needs remote nodes behind the cards");
    _sim->scheduleAt(drill.at, [this, drill] { openDrillWindow(drill); });
    _sim->scheduleAt(drill.at + drill.duration,
                     [this, drill] { closeDrillWindow(drill); });
}

void
FleetManager::openDrillWindow(const FaultDrill &drill)
{
    ++_faultWindows;
    record("drill OPEN stride=" + std::to_string(drill.cardStride));
    ssd::FaultConfig rates;
    rates.readErrorRate = drill.readErrorRate;
    rates.writeErrorRate = drill.writeErrorRate;
    rates.latencySpikeRate = drill.latencySpikeRate;
    for (int c = 0; c < cards(); ++c) {
        if (!drillHits(drill, c))
            continue;
        for (int s = 0; s < _cfg.ssdsPerCard; ++s)
            card(c).ssd(s).faults() = rates;
        if (_onFaultWindow)
            _onFaultWindow(c, true);
        if (drill.loseNode) {
            ++_pendingDrillOps;
            record("drill failNode card=" + std::to_string(c));
            card(c).console().failNode(
                ctrlEid(c), 0, [this](core::MiFailNodeResult r) {
                    if (r.ok)
                        ++_nodeLosses;
                    --_pendingDrillOps;
                });
        }
        if (drill.upgradeStorm) {
            // A redundant concurrent upgrade aimed at slot 0: when a
            // wave already has the slot mid-upgrade the controller
            // must reject it cleanly (re-entrancy guard), never
            // interleave two context store/reload sequences.
            ++_pendingDrillOps;
            record("drill storm card=" + std::to_string(c));
            card(c).console().firmwareUpgrade(
                ctrlEid(c), 0, 1u << 16,
                [this](core::MiUpgradeResult r) {
                    if (!r.ok)
                        ++_stormRejections;
                    --_pendingDrillOps;
                });
        }
    }
}

void
FleetManager::closeDrillWindow(const FaultDrill &drill)
{
    record("drill CLOSE");
    for (int c = 0; c < cards(); ++c) {
        if (!drillHits(drill, c))
            continue;
        for (int s = 0; s < _cfg.ssdsPerCard; ++s)
            card(c).ssd(s).faults() = ssd::FaultConfig{};
        // The harness keeps oracles lenient after the window closes
        // (commands submitted near the edge may fail late); flipping
        // the hook off is still its cue that rates dropped to zero.
        if (_onFaultWindow)
            _onFaultWindow(c, false);
    }
}

} // namespace bms::fleet
