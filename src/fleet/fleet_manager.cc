#include "fleet/fleet_manager.hh"

#include <utility>

#include "nvme/defs.hh"
#include "sim/check.hh"

namespace bms::fleet {

core::QosLimits
qosLimitsFor(QosClass cls)
{
    core::QosLimits q;
    switch (cls) {
      case QosClass::Gold:
        q.iopsLimit = 200'000.0;
        break;
      case QosClass::Silver:
        q.iopsLimit = 100'000.0;
        break;
      case QosClass::Bronze:
        q.iopsLimit = 50'000.0;
        break;
    }
    return q;
}

FleetManager::FleetManager(const FleetConfig &cfg) : _cfg(cfg)
{
    BMS_ASSERT(_cfg.cards >= 1, "a fleet needs cards: ", _cfg.cards);
    BMS_ASSERT(_cfg.ssdsPerCard >= 1 && _cfg.ssdsPerCard <= 4,
               "cards have 4 back-end slots: ", _cfg.ssdsPerCard);
    BMS_ASSERT(_cfg.overcommitCap >= 1.0,
               "overcommit cap below 1.0 would refuse thick capacity");
    _sim = std::make_unique<sim::Simulator>(_cfg.seed);

    for (int c = 0; c < _cfg.cards; ++c) {
        harness::TestbedConfig tb;
        tb.sharedSim = _sim.get();
        tb.namePrefix = "card" + std::to_string(c) + ".";
        tb.ssdCount = _cfg.ssdsPerCard;
        tb.ssd.functionalData = true;
        tb.ssd.profile.capacityBytes = _cfg.ssdCapacityBytes;
        tb.ssd.profile.fwActivateMin = _cfg.fwActivateMin;
        tb.ssd.profile.fwActivateMax = _cfg.fwActivateMax;
        tb.chunkBytes = _cfg.chunkBytes;
        tb.ioQueues = _cfg.ioQueues;
        tb.queueDepth = _cfg.queueDepth;
        tb.perLaneEvents = _cfg.perLaneEvents;
        if (_cfg.remoteNodesPerCard > 0) {
            tb.remoteNodes = _cfg.remoteNodesPerCard;
            tb.volumesPerNode = 1;
            tb.remoteVolumeBytes = _cfg.ssdCapacityBytes / 4;
            tb.remoteServer.ssd.functionalData = true;
        }
        auto bed = std::make_unique<harness::BmStoreTestbed>(tb);
        // Lossless replacement needs somewhere to pull spares from.
        bed->enableSpareDisks();
        _cards.push_back(std::move(bed));
        _cardState.push_back(CardState{});
    }
    record("fleet up: cards=" + std::to_string(_cfg.cards) +
           " ssds/card=" + std::to_string(_cfg.ssdsPerCard));
}

FleetManager::~FleetManager() = default;

int
FleetManager::tenantsOn(int card) const
{
    int n = 0;
    for (const TenantRecord &t : _tenants)
        n += t.card == card ? 1 : 0;
    return n;
}

void
FleetManager::record(const std::string &what)
{
    _trace.push_back("t=" + std::to_string(_sim->now()) + " " + what);
}

std::uint64_t
FleetManager::traceHash() const
{
    // FNV-1a over every trace line, newline-delimited.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::string &line : _trace) {
        for (char ch : line) {
            h ^= static_cast<std::uint8_t>(ch);
            h *= 0x100000001b3ULL;
        }
        h ^= static_cast<std::uint8_t>('\n');
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
FleetManager::pumpUntil(const std::function<bool()> &done,
                        sim::Tick timeout)
{
    sim::Tick deadline = _sim->now() + timeout;
    while (!done()) {
        BMS_ASSERT_LT(_sim->now(), deadline,
                      "fleet operation timed out");
        _sim->runUntil(_sim->now() + sim::microseconds(200));
    }
}

core::Eid
FleetManager::ctrlEid(int card)
{
    return this->card(card).controller().endpoint().eid();
}

Placement
FleetManager::admit(const TenantRequest &req)
{
    Placement out;
    BMS_ASSERT(req.bytes > 0, "admission request without capacity");

    // One fresh `df` snapshot per card — placement always reads the
    // operator API, never the card's internals. The queries ride
    // every card's own MCTP channel concurrently.
    std::vector<DfSnapshot> df = queryDfAll();

    std::string why;
    int best = pickCard(req, df, why);
    if (best < 0) {
        out.reason = why;
        record("admit REFUSED: " + why);
        return out;
    }

    CardState &st = _cardState[static_cast<std::size_t>(best)];
    auto fn = static_cast<std::uint8_t>(st.nextFn);
    core::MgmtConsole &console = card(best).console();

    bool done = false;
    std::optional<std::uint32_t> nsid;
    console.createNamespace(ctrlEid(best), fn, req.bytes, 0,
                            qosLimitsFor(req.qos),
                            [&done, &nsid](std::optional<std::uint32_t> id) {
                                nsid = id;
                                done = true;
                            },
                            req.thin);
    pumpUntil([&done] { return done; });
    if (!nsid) {
        // df said yes but the card said no (e.g. an admission raced a
        // CoW allocation): a legal refusal, surfaced as one.
        out.reason = "card " + std::to_string(best) +
                     " refused the namespace";
        record("admit REFUSED: " + out.reason);
        return out;
    }

    host::NvmeDriver &drv = card(best).attachDriver(fn, *nsid);

    std::uint64_t chunks =
        (req.bytes + _cfg.chunkBytes - 1) / _cfg.chunkBytes;
    st.nextFn += 1;
    st.logicalChunks += chunks;
    st.committedIops += qosLimitsFor(req.qos).iopsLimit;

    TenantRecord rec;
    rec.card = best;
    rec.fn = fn;
    rec.nsid = *nsid;
    rec.antiAffinityGroup = req.antiAffinityGroup;
    rec.thin = req.thin;
    rec.chunks = chunks;
    rec.driver = &drv;
    _tenants.push_back(rec);
    ++_tenantCount;

    out.ok = true;
    out.card = best;
    out.fn = fn;
    out.nsid = *nsid;
    out.freeChunksAtAdmit =
        df[static_cast<std::size_t>(best)].freeChunks;
    record("admit card=" + std::to_string(best) +
           " fn=" + std::to_string(fn) +
           " nsid=" + std::to_string(*nsid) +
           " chunks=" + std::to_string(chunks) +
           (req.thin ? " thin" : " thick") +
           " group=" + std::to_string(req.antiAffinityGroup));
    return out;
}

host::NvmeDriver &
FleetManager::tenantDriver(int card, std::uint8_t fn)
{
    for (const TenantRecord &t : _tenants) {
        if (t.card == card && t.fn == fn) {
            BMS_ASSERT(t.driver, "tenant without driver");
            return *t.driver;
        }
    }
    BMS_PANIC("no tenant fn=", fn, " on card ", card);
}

} // namespace bms::fleet
