/**
 * @file
 * Remote NVMe device — the initiator side of the remote-storage
 * extension. Exposes a standard NVMe controller (one function, one
 * namespace = one exported volume) whose media is a StorageServer
 * across a NetworkLink.
 *
 * Because it implements pcie::PcieDeviceIf and fetches its commands
 * and data through whatever PcieUpstreamIf it is attached to, it can
 * sit (a) in a host slot — a plain NVMe-oF-style initiator — or
 * (b) in a BMS-Engine back-end slot, giving BM-Store tenants remote
 * volumes behind the exact same front-end VFs, LBA mapping and QoS:
 * the paper's §VI-D "add remote storage support to cope with more
 * storage scenarios".
 *
 * The initiator keeps a bounded window of requests on the wire; each
 * request carries a unique id and is covered by a sim-clock timeout.
 * A timed-out request is retried (fresh id) a bounded number of
 * times, then completed with a transfer error — a dead storage node
 * therefore surfaces as command errors, never as a hang. Responses
 * for abandoned ids are dropped (retried writes carry identical
 * payloads, so duplicate execution is harmless).
 */

#ifndef BMS_REMOTE_REMOTE_DEVICE_HH
#define BMS_REMOTE_REMOTE_DEVICE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "nvme/controller.hh"
#include "nvme/prp.hh"
#include "pcie/device.hh"
#include "remote/network.hh"
#include "remote/storage_server.hh"
#include "sim/simulator.hh"

namespace bms::remote {

/** Initiator-side protocol knobs. */
struct RemoteClientConfig
{
    /** Max requests awaiting a response at once; excess queue. */
    int window = 32;
    /**
     * Response deadline per attempt, measured from the moment the
     * request message is handed to the link. Sized so a saturated
     * pipe (a full window of 2 MiB transfers queued on one 2.9 GB/s
     * direction is ~23 ms of serialization) never trips it.
     */
    sim::Tick requestTimeout = sim::milliseconds(250);
    /** Retries after the first attempt before giving up. */
    int maxRetries = 2;
};

/** NVMe front end for one remote volume. */
class RemoteNvmeDevice : public sim::SimObject, public pcie::PcieDeviceIf
{
  public:
    /**
     * @param link network link to the server (direction 0 = toward
     *        the server)
     * @param server the storage target
     * @param volume volume id previously created on the server
     */
    RemoteNvmeDevice(sim::Simulator &sim, std::string name,
                     NetworkLink &link, StorageServer &server, int volume,
                     RemoteClientConfig ccfg = RemoteClientConfig());

    /** @name PcieDeviceIf */
    /// @{
    int functionCount() const override { return 1; }
    void mmioWrite(pcie::FunctionId fn, std::uint64_t offset,
                   std::uint64_t value) override;
    std::uint64_t mmioRead(pcie::FunctionId fn,
                           std::uint64_t offset) override;
    void attached(pcie::PcieUpstreamIf &upstream) override;
    /// @}

    nvme::ControllerModel &controller() { return *_ctrl; }
    const RemoteClientConfig &clientConfig() const { return _ccfg; }

    /** @name Protocol counters (tests, monitor). */
    /// @{
    std::uint64_t ios() const { return _ios; }
    /** Request-payload bytes handed to the link (dir 0). */
    std::uint64_t txBytes() const { return _txBytes; }
    /** Response-payload bytes handed to the link (dir 1). */
    std::uint64_t rxBytes() const { return _rxBytes; }
    std::uint64_t timeouts() const { return _timeouts; }
    std::uint64_t retries() const { return _retries; }
    /** Commands failed after exhausting every retry. */
    std::uint64_t exhausted() const { return _exhausted; }
    /** Responses that arrived after their request was abandoned. */
    std::uint64_t staleDrops() const { return _staleDrops; }
    int wireInflight() const { return _wireInflight; }
    /// @}

  private:
    class Controller : public nvme::ControllerModel
    {
      public:
        Controller(sim::Simulator &sim, std::string name, Config cfg,
                   RemoteNvmeDevice &owner)
            : ControllerModel(sim, std::move(name), cfg), _owner(owner)
        {}

      protected:
        void
        executeIo(const nvme::Sqe &sqe, std::uint16_t sqid) override
        {
            _owner.executeIo(sqe, sqid);
        }

      private:
        RemoteNvmeDevice &_owner;
    };

    friend class Controller;

    /** One command in flight on (or queued for) the wire. */
    struct Flight
    {
        nvme::Sqe sqe;
        std::uint16_t sqid = 0;
        bool isWrite = false;
        bool isFlush = false;
        std::uint64_t len = 0;
        /** Payload: gathered for writes, filled by the server for reads. */
        std::shared_ptr<std::vector<std::uint8_t>> data;
        /** Upstream DMA layout, kept for the read scatter. */
        std::vector<nvme::DmaSegment> segs;
        int attempt = 0;
    };

    void executeIo(const nvme::Sqe &sqe, std::uint16_t sqid);
    void enqueue(Flight f);
    void pump();
    void sendAttempt(Flight f);
    void onResponse(std::uint64_t id, bool ok);
    void onTimeout(std::uint64_t id);
    void finishFlight(Flight f, bool ok);

    /** SsdDevice-style PRP walk through the upstream interface. */
    void resolveSegments(const nvme::Sqe &sqe,
                         std::function<void(std::vector<nvme::DmaSegment>)>
                             then);
    void dmaSegments(const std::vector<nvme::DmaSegment> &segs,
                     bool to_host, std::uint8_t *buf,
                     std::function<void()> done);

    NetworkLink &_link;
    StorageServer &_server;
    int _volume;
    RemoteClientConfig _ccfg;
    std::unique_ptr<Controller> _ctrl;
    pcie::PcieUpstreamIf *_up = nullptr;

    std::deque<Flight> _sendq;
    std::unordered_map<std::uint64_t, Flight> _pending;
    std::uint64_t _nextReq = 1;
    int _wireInflight = 0;

    std::uint64_t _ios = 0;
    std::uint64_t _txBytes = 0;
    std::uint64_t _rxBytes = 0;
    std::uint64_t _timeouts = 0;
    std::uint64_t _retries = 0;
    std::uint64_t _exhausted = 0;
    std::uint64_t _staleDrops = 0;
};

} // namespace bms::remote

#endif // BMS_REMOTE_REMOTE_DEVICE_HH
