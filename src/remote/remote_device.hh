/**
 * @file
 * Remote NVMe device — the initiator side of the remote-storage
 * extension. Exposes a standard NVMe controller (one function, one
 * namespace = one exported volume) whose media is a StorageServer
 * across a NetworkLink.
 *
 * Because it implements pcie::PcieDeviceIf and fetches its commands
 * and data through whatever PcieUpstreamIf it is attached to, it can
 * sit (a) in a host slot — a plain NVMe-oF-style initiator — or
 * (b) in a BMS-Engine back-end slot, giving BM-Store tenants remote
 * volumes behind the exact same front-end VFs, LBA mapping and QoS:
 * the paper's §VI-D "add remote storage support to cope with more
 * storage scenarios".
 */

#ifndef BMS_REMOTE_REMOTE_DEVICE_HH
#define BMS_REMOTE_REMOTE_DEVICE_HH

#include <cstdint>
#include <memory>

#include "nvme/controller.hh"
#include "nvme/prp.hh"
#include "pcie/device.hh"
#include "remote/network.hh"
#include "remote/storage_server.hh"
#include "sim/simulator.hh"

namespace bms::remote {

/** NVMe front end for one remote volume. */
class RemoteNvmeDevice : public sim::SimObject, public pcie::PcieDeviceIf
{
  public:
    /**
     * @param link network link to the server (direction 0 = toward
     *        the server)
     * @param server the storage target
     * @param volume volume id previously created on the server
     */
    RemoteNvmeDevice(sim::Simulator &sim, std::string name,
                     NetworkLink &link, StorageServer &server,
                     int volume);

    /** @name PcieDeviceIf */
    /// @{
    int functionCount() const override { return 1; }
    void mmioWrite(pcie::FunctionId fn, std::uint64_t offset,
                   std::uint64_t value) override;
    std::uint64_t mmioRead(pcie::FunctionId fn,
                           std::uint64_t offset) override;
    void attached(pcie::PcieUpstreamIf &upstream) override;
    /// @}

    nvme::ControllerModel &controller() { return *_ctrl; }
    std::uint64_t ios() const { return _ios; }

  private:
    class Controller : public nvme::ControllerModel
    {
      public:
        Controller(sim::Simulator &sim, std::string name, Config cfg,
                   RemoteNvmeDevice &owner)
            : ControllerModel(sim, std::move(name), cfg), _owner(owner)
        {}

      protected:
        void
        executeIo(const nvme::Sqe &sqe, std::uint16_t sqid) override
        {
            _owner.executeIo(sqe, sqid);
        }

      private:
        RemoteNvmeDevice &_owner;
    };

    friend class Controller;

    void executeIo(const nvme::Sqe &sqe, std::uint16_t sqid);
    void finish(const nvme::Sqe &sqe, std::uint16_t sqid, bool ok);

    NetworkLink &_link;
    StorageServer &_server;
    int _volume;
    std::unique_ptr<Controller> _ctrl;
    pcie::PcieUpstreamIf *_up = nullptr;
    std::uint64_t _ios = 0;
};

} // namespace bms::remote

#endif // BMS_REMOTE_REMOTE_DEVICE_HH
