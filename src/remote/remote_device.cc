#include "remote/remote_device.hh"

#include <utility>

namespace bms::remote {

using nvme::IoOpcode;
using nvme::Sqe;
using nvme::Status;

RemoteNvmeDevice::RemoteNvmeDevice(sim::Simulator &sim, std::string name,
                                   NetworkLink &link,
                                   StorageServer &server, int volume)
    : SimObject(sim, name), _link(link), _server(server), _volume(volume)
{
    nvme::ControllerModel::Config cfg;
    cfg.fn = 0;
    cfg.model = "BMS-REMOTE-VOL";
    _ctrl = std::make_unique<Controller>(sim, name + ".ctrl", cfg, *this);
    nvme::NamespaceInfo ns;
    ns.nsid = 1;
    ns.sizeBlocks = server.volumeBytes(volume) / nvme::kBlockSize;
    _ctrl->addNamespace(ns);
}

void
RemoteNvmeDevice::mmioWrite(pcie::FunctionId fn, std::uint64_t offset,
                            std::uint64_t value)
{
    BMS_ASSERT_EQ(fn, 0, "remote NVMe device is single-function");
    _ctrl->regWrite(offset, value);
}

std::uint64_t
RemoteNvmeDevice::mmioRead(pcie::FunctionId fn, std::uint64_t offset)
{
    BMS_ASSERT_EQ(fn, 0, "remote NVMe device is single-function");
    return _ctrl->regRead(offset);
}

void
RemoteNvmeDevice::attached(pcie::PcieUpstreamIf &upstream)
{
    _up = &upstream;
    _ctrl->setUpstream(&upstream);
}

void
RemoteNvmeDevice::finish(const Sqe &sqe, std::uint16_t sqid, bool ok)
{
    _ctrl->complete(sqid, sqe.cid,
                    ok ? Status::Success : Status::DataTransferError);
}

void
RemoteNvmeDevice::executeIo(const Sqe &sqe, std::uint16_t sqid)
{
    auto op = static_cast<IoOpcode>(sqe.opcode);
    if (op != IoOpcode::Read && op != IoOpcode::Write &&
        op != IoOpcode::Flush) {
        _ctrl->complete(sqid, sqe.cid, Status::InvalidOpcode);
        return;
    }
    ++_ios;
    std::uint64_t len = op == IoOpcode::Flush ? 0 : sqe.dataBytes();
    std::uint64_t offset = sqe.slba() * nvme::kBlockSize;

    RemoteIo io;
    io.isFlush = op == IoOpcode::Flush;
    io.isWrite = op == IoOpcode::Write;
    io.offset = offset;
    io.len = static_cast<std::uint32_t>(len);

    if (op == IoOpcode::Write) {
        // Fetch the payload from upstream memory (host natively, or
        // routed by the engine when behind BM-Store; timing-only —
        // remote volumes do not carry functional bytes), then push
        // command+data over the wire.
        io.done = [this, sqe, sqid](bool ok) {
            // Completion message back over the wire.
            _link.send(1, pcie::kCqeBytes, [this, sqe, sqid, ok] {
                finish(sqe, sqid, ok);
            });
        };
        _up->dmaRead(sqe.prp1, static_cast<std::uint32_t>(len), nullptr,
                     [this, len, io = std::move(io)]() mutable {
                         _link.send(0, pcie::kSqeBytes + len,
                                    [this, io = std::move(io)]() mutable {
                                        _server.execute(_volume,
                                                        std::move(io));
                                    });
                     });
        return;
    }

    // Read / flush: command over the wire; data comes back with the
    // response and is then DMA'd to the upstream buffers.
    io.done = [this, sqe, sqid, len](bool ok) {
        std::uint64_t resp = pcie::kCqeBytes + (ok ? len : 0);
        _link.send(1, resp, [this, sqe, sqid, len, ok] {
            if (!ok || len == 0) {
                finish(sqe, sqid, ok);
                return;
            }
            _up->dmaWrite(sqe.prp1, static_cast<std::uint32_t>(len),
                          nullptr, [this, sqe, sqid] {
                              finish(sqe, sqid, true);
                          });
        });
    };
    _link.send(0, pcie::kSqeBytes,
               [this, io = std::move(io)]() mutable {
                   _server.execute(_volume, std::move(io));
               });
}

} // namespace bms::remote
