#include "remote/remote_device.hh"

#include <utility>

namespace bms::remote {

using nvme::IoOpcode;
using nvme::Sqe;
using nvme::Status;

RemoteNvmeDevice::RemoteNvmeDevice(sim::Simulator &sim, std::string name,
                                   NetworkLink &link,
                                   StorageServer &server, int volume,
                                   RemoteClientConfig ccfg)
    : SimObject(sim, name), _link(link), _server(server), _volume(volume),
      _ccfg(ccfg)
{
    BMS_ASSERT(_ccfg.window > 0, "remote client window must be positive");
    nvme::ControllerModel::Config cfg;
    cfg.fn = 0;
    cfg.model = "BMS-REMOTE-VOL";
    _ctrl = std::make_unique<Controller>(sim, name + ".ctrl", cfg, *this);
    nvme::NamespaceInfo ns;
    ns.nsid = 1;
    ns.sizeBlocks = server.volumeBytes(volume) / nvme::kBlockSize;
    _ctrl->addNamespace(ns);

    registerStat("ios", [this] { return double(_ios); });
    registerStat("timeouts", [this] { return double(_timeouts); });
    registerStat("retries", [this] { return double(_retries); });
    registerStat("exhausted", [this] { return double(_exhausted); });
}

void
RemoteNvmeDevice::mmioWrite(pcie::FunctionId fn, std::uint64_t offset,
                            std::uint64_t value)
{
    BMS_ASSERT_EQ(fn, 0, "remote NVMe device is single-function");
    _ctrl->regWrite(offset, value);
}

std::uint64_t
RemoteNvmeDevice::mmioRead(pcie::FunctionId fn, std::uint64_t offset)
{
    BMS_ASSERT_EQ(fn, 0, "remote NVMe device is single-function");
    return _ctrl->regRead(offset);
}

void
RemoteNvmeDevice::attached(pcie::PcieUpstreamIf &upstream)
{
    _up = &upstream;
    _ctrl->setUpstream(&upstream);
}

void
RemoteNvmeDevice::resolveSegments(
    const Sqe &sqe, std::function<void(std::vector<nvme::DmaSegment>)> then)
{
    std::uint64_t len = sqe.dataBytes();
    if (!nvme::needsPrpList(sqe.prp1, len)) {
        then(nvme::decodePrp(sqe.prp1, sqe.prp2, len, {}));
        return;
    }
    std::uint32_t entries = nvme::prpPageCount(sqe.prp1, len) - 1;
    auto raw = std::make_shared<std::vector<std::uint64_t>>(entries);
    _up->dmaRead(sqe.prp2,
                 static_cast<std::uint32_t>(entries * sizeof(std::uint64_t)),
                 reinterpret_cast<std::uint8_t *>(raw->data()),
                 [sqe, len, raw, then = std::move(then)] {
                     then(nvme::decodePrp(sqe.prp1, sqe.prp2, len, *raw));
                 });
}

void
RemoteNvmeDevice::dmaSegments(const std::vector<nvme::DmaSegment> &segs,
                              bool to_host, std::uint8_t *buf,
                              std::function<void()> done)
{
    BMS_ASSERT(!segs.empty(), "DMA with no PRP segments");
    auto remaining = std::make_shared<std::size_t>(segs.size());
    auto fire = [remaining, done = std::move(done)] {
        if (--*remaining == 0)
            done();
    };
    std::uint64_t off = 0;
    for (const auto &seg : segs) {
        std::uint8_t *p = buf + off;
        if (to_host)
            _up->dmaWrite(seg.addr, seg.len, p, fire);
        else
            _up->dmaRead(seg.addr, seg.len, p, fire);
        off += seg.len;
    }
}

void
RemoteNvmeDevice::executeIo(const Sqe &sqe, std::uint16_t sqid)
{
    auto op = static_cast<IoOpcode>(sqe.opcode);
    if (op != IoOpcode::Read && op != IoOpcode::Write &&
        op != IoOpcode::Flush) {
        _ctrl->complete(sqid, sqe.cid, Status::InvalidOpcode);
        return;
    }
    ++_ios;

    Flight f;
    f.sqe = sqe;
    f.sqid = sqid;
    f.isWrite = op == IoOpcode::Write;
    f.isFlush = op == IoOpcode::Flush;
    f.len = f.isFlush ? 0 : sqe.dataBytes();

    if (f.isFlush) {
        enqueue(std::move(f));
        return;
    }

    resolveSegments(sqe, [this, f = std::move(f)](
                             std::vector<nvme::DmaSegment> segs) mutable {
        f.segs = std::move(segs);
        f.data =
            std::make_shared<std::vector<std::uint8_t>>(f.len);
        if (f.isWrite) {
            // Gather the payload from upstream memory (host natively,
            // or chip memory when behind BM-Store), then go on the
            // wire with command + data. Copy the layout out before f
            // moves into the continuation (dmaSegments only reads it
            // during the call itself).
            std::vector<nvme::DmaSegment> layout = f.segs;
            std::uint8_t *p = f.data->data();
            auto cont = [this, f = std::move(f)]() mutable {
                enqueue(std::move(f));
            };
            dmaSegments(layout, false, p, std::move(cont));
            return;
        }
        enqueue(std::move(f));
    });
}

void
RemoteNvmeDevice::enqueue(Flight f)
{
    f.attempt = 1;
    _sendq.push_back(std::move(f));
    pump();
}

void
RemoteNvmeDevice::pump()
{
    while (_wireInflight < _ccfg.window && !_sendq.empty()) {
        Flight f = std::move(_sendq.front());
        _sendq.pop_front();
        ++_wireInflight;
        sendAttempt(std::move(f));
    }
}

void
RemoteNvmeDevice::sendAttempt(Flight f)
{
    std::uint64_t id = _nextReq++;
    bool is_write = f.isWrite;
    bool is_read = !f.isWrite && !f.isFlush;
    std::uint64_t len = f.len;

    RemoteIo io;
    io.isWrite = f.isWrite;
    io.isFlush = f.isFlush;
    io.offset = f.sqe.slba() * nvme::kBlockSize;
    io.len = static_cast<std::uint32_t>(len);
    io.data = f.data;
    // Runs on the server when the request completes there; the
    // response message (and read data) then crosses the wire back.
    io.done = [this, id, is_read, len](bool ok) {
        std::uint64_t resp = pcie::kCqeBytes + (is_read && ok ? len : 0);
        _rxBytes += resp;
        _link.send(1, resp, [this, id, ok] { onResponse(id, ok); });
    };

    _pending.emplace(id, std::move(f));

    std::uint64_t req = pcie::kSqeBytes + (is_write ? len : 0);
    _txBytes += req;
    _link.send(0, req, [this, io = std::move(io)]() mutable {
        _server.execute(_volume, std::move(io));
    });
    schedule(_ccfg.requestTimeout, [this, id] { onTimeout(id); });
}

void
RemoteNvmeDevice::onResponse(std::uint64_t id, bool ok)
{
    auto it = _pending.find(id);
    if (it == _pending.end()) {
        // Abandoned after timeout: the command was retried (or has
        // already failed); drop the late response.
        ++_staleDrops;
        return;
    }
    Flight f = std::move(it->second);
    _pending.erase(it);
    finishFlight(std::move(f), ok);
}

void
RemoteNvmeDevice::onTimeout(std::uint64_t id)
{
    auto it = _pending.find(id);
    if (it == _pending.end())
        return; // Responded in time.
    ++_timeouts;
    Flight f = std::move(it->second);
    _pending.erase(it);
    if (f.attempt > _ccfg.maxRetries) {
        ++_exhausted;
        logWarn("remote request gave up after ", f.attempt,
                " attempts (len=", f.len, ")");
        finishFlight(std::move(f), false);
        return;
    }
    ++_retries;
    ++f.attempt;
    // The retry keeps its window slot; a fresh id fences off the
    // stale response should the original still be in flight.
    sendAttempt(std::move(f));
}

void
RemoteNvmeDevice::finishFlight(Flight f, bool ok)
{
    --_wireInflight;
    pump();
    if (!ok) {
        _ctrl->complete(f.sqid, f.sqe.cid, Status::DataTransferError);
        return;
    }
    if (f.isWrite || f.isFlush || f.len == 0) {
        _ctrl->complete(f.sqid, f.sqe.cid, Status::Success);
        return;
    }
    // Read: scatter the returned payload to the upstream buffers.
    auto data = f.data;
    auto segs = std::make_shared<std::vector<nvme::DmaSegment>>(
        std::move(f.segs));
    std::uint16_t sqid = f.sqid;
    std::uint16_t cid = f.sqe.cid;
    dmaSegments(*segs, true, data->data(), [this, data, segs, sqid, cid] {
        _ctrl->complete(sqid, cid, Status::Success);
    });
}

} // namespace bms::remote
