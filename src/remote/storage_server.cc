#include "remote/storage_server.hh"

#include <utility>

namespace bms::remote {

StorageServer::StorageServer(sim::Simulator &sim, std::string name,
                             Config cfg)
    : SimObject(sim, name), _cfg(cfg)
{
    _host = sim.make<host::HostSystem>(sim, name + ".machine");
    int ready = 0;
    for (int i = 0; i < cfg.ssdCount; ++i) {
        auto *disk = sim.make<ssd::SsdDevice>(
            sim, name + ".ssd" + std::to_string(i), cfg.ssd);
        pcie::RootPort &port = _host->addSlot(4);
        port.attach(*disk);
        host::NvmeDriver::Config dc;
        dc.profile = baselines::spdkBackendProfile();
        auto *drv = sim.make<host::NvmeDriver>(
            sim, name + ".nvme" + std::to_string(i), _host->memory(),
            _host->irq(), port, _host->cpus(), 0, dc);
        drv->init([&ready] { ++ready; });
        _ssds.push_back(disk);
        _drivers.push_back(drv);
    }
    // Bring-up happens at t=0 before any workload; drive it inline.
    sim::Tick deadline = sim.now() + sim::seconds(2);
    while (ready != cfg.ssdCount) {
        BMS_ASSERT_LT(sim.now(), deadline,
                      "storage server bring-up stuck");
        sim.runUntil(sim.now() + sim::milliseconds(1));
    }
    _ready = true;
}

int
StorageServer::addVolume(Volume v)
{
    BMS_ASSERT(v.disk >= 0 && v.disk < static_cast<int>(_drivers.size()),
               "volume references unknown disk ", v.disk);
    BMS_ASSERT_LE(v.offset + v.length,
                  _drivers[static_cast<std::size_t>(v.disk)]->capacityBytes(),
                  "volume extends past the disk");
    _volumes.push_back(v);
    return static_cast<int>(_volumes.size()) - 1;
}

std::uint64_t
StorageServer::volumeBytes(int volume) const
{
    return _volumes.at(static_cast<std::size_t>(volume)).length;
}

void
StorageServer::execute(int volume, RemoteIo io)
{
    BMS_ASSERT(_ready, "I/O executed before server bring-up");
    const Volume &vol = _volumes.at(static_cast<std::size_t>(volume));
    if (!io.isFlush && io.offset + io.len > vol.length) {
        io.done(false);
        return;
    }
    ++_served;
    // Target-side software processing on the poll-mode core.
    sim::Tick start = _targetCore.reserve(now(), _cfg.perIoCost);
    sim().scheduleAt(start + _cfg.perIoCost, [this, vol,
                                              io = std::move(io)]() mutable {
        host::BlockRequest req;
        req.op = io.isFlush ? host::BlockRequest::Op::Flush
                            : (io.isWrite ? host::BlockRequest::Op::Write
                                          : host::BlockRequest::Op::Read);
        req.offset = vol.offset + io.offset;
        req.len = io.len;
        req.done = std::move(io.done);
        _drivers[static_cast<std::size_t>(vol.disk)]->submit(
            std::move(req));
    });
}

} // namespace bms::remote
