#include "remote/storage_server.hh"

#include <utility>

namespace bms::remote {

StorageServer::StorageServer(sim::Simulator &sim, std::string name,
                             Config cfg)
    : SimObject(sim, name), _cfg(cfg)
{
    _host = sim.make<host::HostSystem>(sim, name + ".machine");
    int ready = 0;
    for (int i = 0; i < cfg.ssdCount; ++i) {
        auto *disk = sim.make<ssd::SsdDevice>(
            sim, name + ".ssd" + std::to_string(i), cfg.ssd);
        if (cfg.perLaneEvents)
            disk->setEventLane(sim.createLane());
        pcie::RootPort &port = _host->addSlot(4);
        port.attach(*disk);
        host::NvmeDriver::Config dc;
        dc.profile = baselines::spdkBackendProfile();
        auto *drv = sim.make<host::NvmeDriver>(
            sim, name + ".nvme" + std::to_string(i), _host->memory(),
            _host->irq(), port, _host->cpus(), 0, dc);
        if (cfg.perLaneEvents)
            drv->setEventLane(sim.createLane());
        drv->init([&ready] { ++ready; });
        _ssds.push_back(disk);
        _drivers.push_back(drv);
    }
    _diskNextFree.assign(static_cast<std::size_t>(cfg.ssdCount), 0);
    for (int i = 0; i < cfg.bounceBuffers; ++i)
        _freeBufs.push_back(_host->memory().alloc(cfg.maxIoBytes));
    // Bring-up happens at t=0 before any workload; drive it inline.
    sim::Tick deadline = sim.now() + sim::seconds(2);
    while (ready != cfg.ssdCount) {
        BMS_ASSERT_LT(sim.now(), deadline,
                      "storage server bring-up stuck");
        sim.runUntil(sim.now() + sim::milliseconds(1));
    }
    _ready = true;

    registerStat("served", [this] { return double(_served); });
    registerStat("dropped", [this] { return double(_dropped); });
}

int
StorageServer::addVolume(Volume v)
{
    BMS_ASSERT(v.disk >= 0 && v.disk < static_cast<int>(_drivers.size()),
               "volume references unknown disk ", v.disk);
    BMS_ASSERT_LE(v.offset + v.length,
                  _drivers[static_cast<std::size_t>(v.disk)]->capacityBytes(),
                  "volume extends past the disk");
    _volumes.push_back(v);
    auto &next = _diskNextFree[static_cast<std::size_t>(v.disk)];
    if (v.offset + v.length > next)
        next = v.offset + v.length;
    return static_cast<int>(_volumes.size()) - 1;
}

int
StorageServer::allocVolume(int disk, std::uint64_t length)
{
    BMS_ASSERT(disk >= 0 && disk < static_cast<int>(_drivers.size()),
               "allocVolume on unknown disk ", disk);
    std::uint64_t off = _diskNextFree[static_cast<std::size_t>(disk)];
    return addVolume(Volume{disk, off, length});
}

std::uint64_t
StorageServer::volumeBytes(int volume) const
{
    return _volumes.at(static_cast<std::size_t>(volume)).length;
}

void
StorageServer::execute(int volume, RemoteIo io)
{
    BMS_ASSERT(_ready, "I/O executed before server bring-up");
    if (_down || _dropNext > 0) {
        // Silent drop: the initiator discovers the loss by timeout.
        if (_dropNext > 0)
            --_dropNext;
        ++_dropped;
        return;
    }
    const Volume &vol = _volumes.at(static_cast<std::size_t>(volume));
    if (!io.isFlush && io.offset + io.len > vol.length) {
        io.done(false);
        return;
    }
    BMS_ASSERT_LE(io.len, _cfg.maxIoBytes,
                  "remote I/O larger than the bounce buffer");
    ++_served;
    // Target-side software processing on the poll-mode core.
    sim::Tick start = _targetCore.reserve(now(), _cfg.perIoCost);
    sim().scheduleAt(start + _cfg.perIoCost, [this, vol,
                                              io = std::move(io)]() mutable {
        submitIo(vol, std::move(io));
    });
}

void
StorageServer::submitIo(const Volume &vol, RemoteIo io)
{
    if (_freeBufs.empty()) {
        _bufWaiters.emplace_back(vol, std::move(io));
        return;
    }
    std::uint64_t buf = _freeBufs.back();
    _freeBufs.pop_back();
    startIo(vol, std::move(io), buf);
}

void
StorageServer::startIo(const Volume &vol, RemoteIo io, std::uint64_t buf)
{
    // Stage write payloads into server memory so the disk's DMA pulls
    // the real bytes (functional disks store them; timing-only disks
    // just pay the transfer cost).
    if (io.isWrite && io.data) {
        _host->memory().write(buf, io.len, io.data->data());
    }
    host::BlockRequest req;
    req.op = io.isFlush ? host::BlockRequest::Op::Flush
                        : (io.isWrite ? host::BlockRequest::Op::Write
                                      : host::BlockRequest::Op::Read);
    req.offset = vol.offset + io.offset;
    req.len = io.len;
    req.dataAddr = buf;
    auto shared = std::make_shared<RemoteIo>(std::move(io));
    req.done = [this, shared, buf](bool ok) {
        if (!shared->isWrite && !shared->isFlush && ok) {
            // Fill the initiator-provided buffer in place (the client
            // holds the same shared vector), or create one.
            if (!shared->data)
                shared->data = std::make_shared<std::vector<std::uint8_t>>(
                    shared->len);
            _host->memory().read(buf, shared->len, shared->data->data());
        }
        // Recycle the buffer (possibly into a queued request) before
        // completing, so completion fan-out can't starve the pool.
        if (_bufWaiters.empty()) {
            _freeBufs.push_back(buf);
        } else {
            auto [wvol, wio] = std::move(_bufWaiters.front());
            _bufWaiters.pop_front();
            startIo(wvol, std::move(wio), buf);
        }
        if (_down) {
            // The node died while the disk I/O was in flight: the
            // completion never makes it back onto the wire.
            ++_dropped;
            return;
        }
        shared->done(ok);
    };
    _drivers[static_cast<std::size_t>(vol.disk)]->submit(std::move(req));
}

} // namespace bms::remote
