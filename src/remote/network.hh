/**
 * @file
 * Datacenter network link model for the remote-storage extension
 * (paper §VI-D future work: "we plan to add remote storage support").
 *
 * A full-duplex link with per-direction serialization (busy-until),
 * propagation delay, and per-message framing overhead — the same
 * modeling idiom as pcie::LinkChannel, at datacenter-fabric scale
 * (25 GbE, ~10 us one-way through the ToR).
 */

#ifndef BMS_REMOTE_NETWORK_HH
#define BMS_REMOTE_NETWORK_HH

#include <cstdint>
#include <functional>

#include "sim/simulator.hh"

namespace bms::remote {

/** Link speed/latency profile. */
struct NetworkProfile
{
    /** Effective per-direction bandwidth (25 GbE minus framing). */
    sim::Bandwidth bandwidth = sim::Bandwidth::gbPerSec(2.9);
    /** One-way propagation (NIC + ToR switch + NIC). */
    sim::Tick propagation = sim::microseconds(10);
    /** Fixed per-message overhead (headers, DMA doorbells). */
    std::uint32_t perMessageBytes = 128;
};

/** Full-duplex point-to-point network link. */
class NetworkLink : public sim::SimObject
{
  public:
    NetworkLink(sim::Simulator &sim, std::string name,
                NetworkProfile profile = NetworkProfile())
        : SimObject(sim, std::move(name)), _profile(profile)
    {}

    /**
     * Send @p payload_bytes in direction @p dir (0 = client→server,
     * 1 = server→client); @p delivered fires at arrival.
     */
    void
    send(int dir, std::uint64_t payload_bytes,
         std::function<void()> delivered)
    {
        sim::Tick &busy = _busy[dir & 1];
        sim::Tick start = now() > busy ? now() : busy;
        busy = start + _profile.bandwidth.delayFor(
                           payload_bytes + _profile.perMessageBytes);
        sim::Tick arrive = busy + _profile.propagation + _extraDelay;
        _bytes[dir & 1] += payload_bytes;
        ++_messages[dir & 1];
        sim().scheduleAt(arrive,
                         [delivered = std::move(delivered)] {
                             delivered();
                         });
    }

    std::uint64_t bytesCarried(int dir) const { return _bytes[dir & 1]; }
    std::uint64_t messagesCarried(int dir) const
    {
        return _messages[dir & 1];
    }
    const NetworkProfile &profile() const { return _profile; }

    /**
     * Deterministic latency injection (fault windows): every message
     * sent while set arrives @p extra later. No internal randomness —
     * replay stays byte-identical for a fixed fault schedule.
     */
    void setExtraDelay(sim::Tick extra) { _extraDelay = extra; }
    sim::Tick extraDelay() const { return _extraDelay; }

  private:
    NetworkProfile _profile;
    sim::Tick _busy[2] = {0, 0};
    sim::Tick _extraDelay = 0;
    std::uint64_t _bytes[2] = {0, 0};
    std::uint64_t _messages[2] = {0, 0};
};

} // namespace bms::remote

#endif // BMS_REMOTE_NETWORK_HH
