/**
 * @file
 * Remote storage server — the target side of the remote-storage
 * extension. A self-contained machine (its own memory, interrupt
 * controller, CPU cores and PCIe slots) whose SSDs are exported as
 * volumes. Requests arrive over a NetworkLink; a poll-mode target
 * thread executes them against the local disks, exactly like an
 * NVMe-over-Fabrics target.
 */

#ifndef BMS_REMOTE_STORAGE_SERVER_HH
#define BMS_REMOTE_STORAGE_SERVER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "baselines/spdk_vhost.hh"
#include "host/host_system.hh"
#include "host/nvme_driver.hh"
#include "sim/simulator.hh"
#include "ssd/ssd_device.hh"

namespace bms::remote {

/** One I/O as it crosses the wire (already deserialized). */
struct RemoteIo
{
    bool isWrite = false;
    bool isFlush = false;
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    /** Completion with success flag (runs on the server side). */
    std::function<void(bool)> done;
};

/** The target machine. */
class StorageServer : public sim::SimObject
{
  public:
    struct Config
    {
        int ssdCount = 1;
        ssd::SsdDevice::Config ssd;
        /** Target-side software cost per I/O (poll-mode target). */
        sim::Tick perIoCost = sim::microsecondsF(1.5);
    };

    StorageServer(sim::Simulator &sim, std::string name, Config cfg);

    /** Export a volume: a byte window of one local disk. */
    struct Volume
    {
        int disk = 0;
        std::uint64_t offset = 0;
        std::uint64_t length = 0;
    };

    int addVolume(Volume v);
    std::uint64_t volumeBytes(int volume) const;

    /**
     * Execute @p io against volume @p volume (called when a request
     * message has fully arrived).
     */
    void execute(int volume, RemoteIo io);

    host::HostSystem &machine() { return *_host; }
    std::uint64_t requestsServed() const { return _served; }

  private:
    Config _cfg;
    host::HostSystem *_host = nullptr;
    std::vector<ssd::SsdDevice *> _ssds;
    std::vector<host::NvmeDriver *> _drivers;
    std::vector<Volume> _volumes;
    host::CpuCore _targetCore;
    std::uint64_t _served = 0;
    bool _ready = false;
};

} // namespace bms::remote

#endif // BMS_REMOTE_STORAGE_SERVER_HH
