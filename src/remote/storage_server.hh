/**
 * @file
 * Remote storage server — the target side of the remote-storage
 * extension. A self-contained machine (its own memory, interrupt
 * controller, CPU cores and PCIe slots) whose SSDs are exported as
 * volumes. Requests arrive over a NetworkLink; a poll-mode target
 * thread executes them against the local disks, exactly like an
 * NVMe-over-Fabrics target.
 */

#ifndef BMS_REMOTE_STORAGE_SERVER_HH
#define BMS_REMOTE_STORAGE_SERVER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "baselines/spdk_vhost.hh"
#include "host/host_system.hh"
#include "host/nvme_driver.hh"
#include "sim/simulator.hh"
#include "ssd/ssd_device.hh"

namespace bms::remote {

/** One I/O as it crosses the wire (already deserialized). */
struct RemoteIo
{
    bool isWrite = false;
    bool isFlush = false;
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    /**
     * Functional payload: carried with the request for writes, filled
     * by the server for successful reads. Null for flushes and
     * timing-only traffic (the server then moves no real bytes).
     */
    std::shared_ptr<std::vector<std::uint8_t>> data;
    /** Completion with success flag (runs on the server side). */
    std::function<void(bool)> done;
};

/** The target machine. */
class StorageServer : public sim::SimObject
{
  public:
    struct Config
    {
        int ssdCount = 1;
        ssd::SsdDevice::Config ssd;
        /** Target-side software cost per I/O (poll-mode target). */
        sim::Tick perIoCost = sim::microsecondsF(1.5);
        /** Largest I/O one request may carry (bounce-buffer size). */
        std::uint32_t maxIoBytes = 2 * 1024 * 1024;
        /** Bounce buffers (concurrent disk I/Os); excess requests queue. */
        int bounceBuffers = 64;
        /** Give each server-side SSD and driver its own event lane. */
        bool perLaneEvents = true;
    };

    StorageServer(sim::Simulator &sim, std::string name, Config cfg);

    /** Export a volume: a byte window of one local disk. */
    struct Volume
    {
        int disk = 0;
        std::uint64_t offset = 0;
        std::uint64_t length = 0;
    };

    int addVolume(Volume v);

    /**
     * Carve the next free @p length bytes of @p disk into a volume
     * (sequential allocation; asserts when the disk is exhausted).
     */
    int allocVolume(int disk, std::uint64_t length);

    std::uint64_t volumeBytes(int volume) const;

    /**
     * Execute @p io against volume @p volume (called when a request
     * message has fully arrived).
     */
    void execute(int volume, RemoteIo io);

    /**
     * Node loss: while down the server silently drops every request,
     * and completions of I/Os already at the disks are swallowed —
     * the initiator only ever finds out via its own timeout.
     */
    void setDown(bool down) { _down = down; }
    bool down() const { return _down; }

    /** Silently drop the next @p n requests (timeout/retry tests). */
    void dropNext(int n) { _dropNext += n; }

    host::HostSystem &machine() { return *_host; }
    ssd::SsdDevice &disk(int i) { return *_ssds.at(i); }
    std::uint64_t requestsServed() const { return _served; }
    std::uint64_t requestsDropped() const { return _dropped; }

  private:
    void submitIo(const Volume &vol, RemoteIo io);
    void startIo(const Volume &vol, RemoteIo io, std::uint64_t buf);

    Config _cfg;
    host::HostSystem *_host = nullptr;
    std::vector<ssd::SsdDevice *> _ssds;
    std::vector<host::NvmeDriver *> _drivers;
    std::vector<Volume> _volumes;
    std::vector<std::uint64_t> _diskNextFree;
    host::CpuCore _targetCore;
    /** Free bounce buffers + requests waiting for one. */
    std::vector<std::uint64_t> _freeBufs;
    std::deque<std::pair<Volume, RemoteIo>> _bufWaiters;
    std::uint64_t _served = 0;
    std::uint64_t _dropped = 0;
    bool _ready = false;
    bool _down = false;
    int _dropNext = 0;
};

} // namespace bms::remote

#endif // BMS_REMOTE_STORAGE_SERVER_HH
