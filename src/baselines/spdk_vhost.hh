/**
 * @file
 * SPDK vhost target model — the paper's software baseline.
 *
 * Dedicated host CPU cores run poll-mode reactors. Each reactor scans
 * its assigned vrings; every descriptor costs core time (descriptor
 * parsing, iovec translation, bdev submission, completion polling —
 * folded into a base cost plus a per-byte cost). Back-end submission
 * goes through a poll-mode userspace NVMe path. The structure is what
 * produces:
 *
 *   - the per-core IOPS/bandwidth ceiling of Fig. 1 (more SSDs need
 *     more bound cores),
 *   - the seq-r-256 collapse on CentOS 3.10 guests (virtio front end
 *     splits 128K into 64K parts → twice the per-IO work),
 *   - the extra latency of Table VII (poll pickup + irq injection).
 */

#ifndef BMS_BASELINES_SPDK_VHOST_HH
#define BMS_BASELINES_SPDK_VHOST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "host/block.hh"
#include "host/cpu.hh"
#include "host/platform_profile.hh"
#include "sim/simulator.hh"
#include "virt/virtio_blk.hh"

namespace bms::baselines {

/** Reactor/core cost model of the vhost target. */
struct SpdkVhostConfig
{
    int cores = 1;
    /** Reactor idle re-poll interval. */
    sim::Tick pollInterval = sim::microseconds(1);
    /** Fixed cost of scanning one vring (even when empty). */
    sim::Tick ringScanCost = sim::nanoseconds(800);
    /** Per-descriptor base processing cost. */
    sim::Tick perIoBase = sim::microseconds(2);
    /** Per-byte data-path cost (iovec walk, vhost descriptors). */
    double perByteNs = 0.45;
    /** Descriptors drained from one ring per reactor iteration. */
    int batchPerRing = 32;
};

/** SPDK vhost target: poll-mode reactors serving virtio rings. */
class SpdkVhostTarget : public sim::SimObject
{
  public:
    using Config = SpdkVhostConfig;

    SpdkVhostTarget(sim::Simulator &sim, std::string name,
                    Config cfg = Config());

    /**
     * Attach a guest device to the target, backed by @p backend (the
     * userspace NVMe path to a raw disk or partition). Every vring of
     * the device is assigned to a reactor round-robin — multi-queue
     * virtio devices therefore spread across cores, as in SPDK.
     */
    void addDevice(virt::VirtioBlkDevice &frontend,
                   host::BlockDeviceIf &backend);

    /** Start the reactors. */
    void start();

    int coresUsed() const { return _cfg.cores; }
    std::uint64_t requestsServed() const { return _served; }

    /** Aggregate reactor busy fraction (diagnostics). */
    double reactorUtilization(sim::Tick now_) const;

  private:
    struct Session
    {
        virt::Vring *ring = nullptr;
        host::BlockDeviceIf *backend = nullptr;
    };

    struct Reactor
    {
        host::CpuCore core;
        std::vector<std::size_t> sessions;
        bool pollScheduled = false;
    };

    void poll(std::size_t reactor_idx);

    Config _cfg;
    std::vector<Session> _sessions;
    std::vector<Reactor> _reactors;
    int _rr = 0;
    bool _started = false;
    std::uint64_t _served = 0;
};

/** Userspace poll-mode NVMe path profile for the vhost back end. */
inline host::PlatformProfile
spdkBackendProfile()
{
    host::PlatformProfile p;
    p.os = "SPDK bdev";
    p.kernel = "userspace";
    // Costs are charged by the reactor model; keep only small
    // critical-path latencies here.
    p.submit = host::StepCost{0, sim::nanoseconds(200)};
    p.irq = host::StepCost{0, sim::nanoseconds(100)};
    p.completion = host::StepCost{0, sim::nanoseconds(200)};
    // Completion "interrupt" models the reactor's CQ poll pickup.
    p.irqDelivery = sim::nanoseconds(200);
    return p;
}

} // namespace bms::baselines

#endif // BMS_BASELINES_SPDK_VHOST_HH
