#include "baselines/spdk_vhost.hh"

#include <utility>

namespace bms::baselines {

SpdkVhostTarget::SpdkVhostTarget(sim::Simulator &sim, std::string name,
                                 Config cfg)
    : SimObject(sim, std::move(name)), _cfg(cfg)
{
    BMS_ASSERT(cfg.cores >= 1, "vhost target needs a reactor core");
    _reactors.resize(static_cast<std::size_t>(cfg.cores));
    registerStat("served", [this] { return double(_served); });
    registerStat("cores", [this] { return double(_cfg.cores); });
}

void
SpdkVhostTarget::addDevice(virt::VirtioBlkDevice &frontend,
                           host::BlockDeviceIf &backend)
{
    for (int q = 0; q < frontend.ringCount(); ++q) {
        std::size_t idx = _sessions.size();
        _sessions.push_back(Session{&frontend.vring(q), &backend});
        _reactors[static_cast<std::size_t>(_rr) % _reactors.size()]
            .sessions.push_back(idx);
        _rr++;
    }
}

void
SpdkVhostTarget::start()
{
    if (_started)
        return;
    _started = true;
    for (std::size_t i = 0; i < _reactors.size(); ++i)
        poll(i);
}

double
SpdkVhostTarget::reactorUtilization(sim::Tick now_) const
{
    double u = 0.0;
    for (const auto &r : _reactors)
        u += r.core.utilization(now_);
    return _reactors.empty() ? 0.0 : u / static_cast<double>(
                                             _reactors.size());
}

void
SpdkVhostTarget::poll(std::size_t reactor_idx)
{
    Reactor &r = _reactors[reactor_idx];
    r.pollScheduled = false;

    // Walk this reactor's rings, accumulating core time along a
    // cursor; actions fire when the core actually reaches them.
    sim::Tick work = 0;
    bool found = false;
    for (std::size_t sess_idx : r.sessions) {
        Session &dev = _sessions[sess_idx];
        work += _cfg.ringScanCost;
        virt::Vring &ring = *dev.ring;
        for (int n = 0; n < _cfg.batchPerRing && !ring.empty(); ++n) {
            virt::VringRequest vr = ring.pop();
            found = true;
            ++_served;
            sim::Tick cost =
                _cfg.perIoBase +
                static_cast<sim::Tick>(_cfg.perByteNs * vr.len);
            work += cost;
            // The descriptor is fully processed `work` into this
            // iteration; backend submission happens then. A zero
            // reserve peeks the cursor (= max(now, busyUntil)).
            sim::Tick start = r.core.reserve(now(), 0);
            host::BlockDeviceIf *backend = dev.backend;
            sim::Tick submit_at = start + work;
            sim().scheduleAt(
                submit_at, [backend, vr = std::move(vr)]() mutable {
                    host::BlockRequest req;
                    req.op = vr.op;
                    req.offset = vr.offset;
                    req.len = vr.len;
                    req.dataAddr = vr.dataAddr;
                    req.done = std::move(vr.complete);
                    backend->submit(std::move(req));
                });
        }
    }
    // Commit the accumulated occupancy to the core.
    sim::Tick iter_end = r.core.reserve(now(), work) + work;

    // Busy-loop when work was found; otherwise sleep one poll period.
    sim::Tick next = found ? iter_end : iter_end + _cfg.pollInterval;
    if (next <= now())
        next = now() + 1;
    r.pollScheduled = true;
    sim().scheduleAt(next, [this, reactor_idx] { poll(reactor_idx); });
}

} // namespace bms::baselines
