/**
 * @file
 * virtio-blk front end (guest side of the SPDK vhost path).
 *
 * Guest submissions are charged to vCPUs, split according to the
 * guest kernel's virtio segment limit (the CentOS 3.10 quirk that
 * wrecks large sequential I/O under vhost — Fig. 9 seq-r-256), and
 * placed on a shared vring that the vhost target polls. Completions
 * arrive via interrupt injection and are charged to vCPUs again.
 */

#ifndef BMS_VIRT_VIRTIO_BLK_HH
#define BMS_VIRT_VIRTIO_BLK_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "host/block.hh"
#include "host/cpu.hh"
#include "host/platform_profile.hh"
#include "sim/simulator.hh"

namespace bms::virt {

/** One request as placed on the vring. */
struct VringRequest
{
    host::BlockRequest::Op op = host::BlockRequest::Op::Read;
    std::uint64_t offset = 0;
    std::uint32_t len = 0;
    /** Guest buffer address (vhost targets DMA directly into it). */
    std::uint64_t dataAddr = 0;
    /** Completion hook invoked by the vhost target (host side). */
    std::function<void(bool)> complete;
};

/**
 * Shared descriptor ring between one virtio-blk device and the vhost
 * target. The target polls available(); the front end never kicks —
 * matching SPDK vhost's poll-mode operation.
 */
class Vring
{
  public:
    void push(VringRequest req) { _queue.push_back(std::move(req)); }

    bool empty() const { return _queue.empty(); }
    std::size_t depth() const { return _queue.size(); }

    VringRequest
    pop()
    {
        VringRequest r = std::move(_queue.front());
        _queue.pop_front();
        return r;
    }

  private:
    std::deque<VringRequest> _queue;
};

/** Guest-visible virtio-blk device. */
class VirtioBlkDevice : public sim::SimObject, public host::BlockDeviceIf
{
  public:
    /**
     * @param vcpus guest vCPU set (submission/completion costs)
     * @param profile guest software profile (split threshold etc.)
     * @param capacity advertised capacity in bytes
     * @param num_queues virtio queues (guests use one per vCPU)
     * @param irq_inject latency of vhost → guest interrupt injection
     */
    VirtioBlkDevice(sim::Simulator &sim, std::string name,
                    host::CpuSet &vcpus,
                    const host::PlatformProfile &profile,
                    std::uint64_t capacity, int num_queues = 1,
                    sim::Tick irq_inject = sim::microseconds(1))
        : SimObject(sim, std::move(name)),
          _vcpus(vcpus),
          _profile(profile),
          _capacity(capacity),
          _rings(static_cast<std::size_t>(num_queues)),
          _irqInject(irq_inject)
    {}

    int ringCount() const { return static_cast<int>(_rings.size()); }
    Vring &vring(int i = 0) { return _rings.at(static_cast<std::size_t>(i)); }

    void
    submit(host::BlockRequest req) override
    {
        std::uint32_t max_seg = _profile.virtioMaxSegBytes;
        if (max_seg == 0 || req.len <= max_seg ||
            req.op == host::BlockRequest::Op::Flush) {
            submitPart(req.op, req.offset, req.len, req.dataAddr,
                       req.queueHint, std::move(req.done));
            return;
        }
        // Guest kernel splits the request into <= max_seg parts; the
        // parent completes when every part does.
        std::uint32_t parts = (req.len + max_seg - 1) / max_seg;
        auto remaining = std::make_shared<std::uint32_t>(parts);
        auto ok_all = std::make_shared<bool>(true);
        auto parent_done = std::make_shared<std::function<void(bool)>>(
            std::move(req.done));
        for (std::uint32_t i = 0; i < parts; ++i) {
            std::uint64_t off = req.offset +
                                static_cast<std::uint64_t>(i) * max_seg;
            std::uint32_t len = std::min(max_seg, static_cast<std::uint32_t>(
                                                      req.len - i * max_seg));
            std::uint64_t addr =
                req.dataAddr
                    ? req.dataAddr + static_cast<std::uint64_t>(i) * max_seg
                    : 0;
            submitPart(req.op, off, len, addr, req.queueHint,
                       [remaining, ok_all, parent_done](bool ok) {
                           if (!ok)
                               *ok_all = false;
                           if (--*remaining == 0 && *parent_done)
                               (*parent_done)(*ok_all);
                       });
        }
    }

    std::uint64_t capacityBytes() const override { return _capacity; }

  private:
    void
    submitPart(host::BlockRequest::Op op, std::uint64_t offset,
               std::uint32_t len, std::uint64_t data_addr, int hint,
               std::function<void(bool)> done)
    {
        // Charge the guest submit path, then expose the descriptor.
        host::CpuCore &core = _vcpus.pick(hint);
        sim::Tick start = core.reserveWithSlack(
            now(), _profile.submit.occupancy, _profile.deferSlack);
        sim::Tick at = start + _profile.submit.latency;
        sim().scheduleAt(at, [this, op, offset, len, data_addr, hint,
                              done = std::move(done)]() mutable {
            VringRequest vr;
            vr.op = op;
            vr.offset = offset;
            vr.len = len;
            vr.dataAddr = data_addr;
            vr.complete = [this, hint,
                           done = std::move(done)](bool ok) {
                // Interrupt injection into the guest, then guest-side
                // completion costs.
                schedule(_irqInject, [this, hint, done, ok] {
                    host::CpuCore &c = _vcpus.pick(hint);
                    sim::Tick s = c.reserve(
                        now(), _profile.irq.occupancy +
                                   _profile.completion.occupancy);
                    sim().scheduleAt(s + _profile.completion.latency,
                                     [done, ok] {
                                         if (done)
                                             done(ok);
                                     });
                });
            };
            vring(hint < 0 ? 0 : hint % ringCount()).push(std::move(vr));
        });
    }

    host::CpuSet &_vcpus;
    host::PlatformProfile _profile;
    std::uint64_t _capacity;
    std::vector<Vring> _rings;
    sim::Tick _irqInject;
};

} // namespace bms::virt

#endif // BMS_VIRT_VIRTIO_BLK_HH
