/**
 * @file
 * Virtual machine model.
 *
 * A VM contributes its vCPU set and guest software-path profile; its
 * storage attaches through one of three paths matching the paper's
 * comparison:
 *
 *   - VFIO: the guest NVMe driver binds directly to a native SSD's
 *     PCIe function (device monopolized, no sharing);
 *   - BM-Store: the guest NVMe driver binds to a BMS-Engine VF
 *     (standard driver, shared back end);
 *   - SPDK vhost: a virtio-blk front end feeds a host polling target.
 *
 * Guest memory is a window of host memory, so DMA into guest buffers
 * needs no extra translation layer in the model (posted interrupts
 * and vCPU costs come from the guest PlatformProfile).
 */

#ifndef BMS_VIRT_VM_HH
#define BMS_VIRT_VM_HH

#include <string>

#include "host/cpu.hh"
#include "host/platform_profile.hh"
#include "sim/simulator.hh"

namespace bms::virt {

/** Static shape of a VM (paper: 4 vCPUs / 4 GB). */
struct VmConfig
{
    int vcpus = 4;
    std::uint64_t memBytes = sim::gib(4);
    host::PlatformProfile profile = host::centos7Guest();
};

/** One guest. */
class VirtualMachine : public sim::SimObject
{
  public:
    using Config = VmConfig;

    VirtualMachine(sim::Simulator &sim, std::string name,
                   Config cfg = Config())
        : SimObject(sim, std::move(name)), _cfg(cfg), _vcpus(cfg.vcpus)
    {}

    host::CpuSet &vcpus() { return _vcpus; }
    const host::PlatformProfile &profile() const { return _cfg.profile; }
    const Config &config() const { return _cfg; }

  private:
    Config _cfg;
    host::CpuSet _vcpus;
};

} // namespace bms::virt

#endif // BMS_VIRT_VM_HH
