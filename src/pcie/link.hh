/**
 * @file
 * PCIe link timing model.
 *
 * Each direction of a link is an independent serialization channel: a
 * transfer occupies the channel for bytes/bandwidth and completes
 * after an additional fixed propagation delay. Back-to-back transfers
 * queue behind each other (busy-until arithmetic), which is what
 * produces the bandwidth ceilings in Figs. 10 and 11.
 */

#ifndef BMS_PCIE_LINK_HH
#define BMS_PCIE_LINK_HH

#include <cstdint>

#include "pcie/types.hh"
#include "sim/types.hh"

namespace bms::pcie {

/** One direction of a link: FIFO serialization + propagation. */
class LinkChannel
{
  public:
    LinkChannel(sim::Bandwidth bw, sim::Tick propagation)
        : _bw(bw), _prop(propagation)
    {}

    /**
     * Reserve channel time for a @p bytes transfer starting no
     * earlier than @p now.
     * @return absolute tick at which the last byte arrives.
     */
    sim::Tick
    reserve(sim::Tick now, std::uint64_t bytes)
    {
        sim::Tick start = now > _busyUntil ? now : _busyUntil;
        _busyUntil = start + _bw.delayFor(bytes);
        return _busyUntil + _prop;
    }

    /**
     * Arrival time of a small control message (doorbell, MSI) that
     * does not meaningfully occupy the channel.
     */
    sim::Tick
    controlArrival(sim::Tick now) const
    {
        return now + _prop + _bw.delayFor(kDoorbellBytes);
    }

    sim::Bandwidth bandwidth() const { return _bw; }
    sim::Tick propagation() const { return _prop; }
    sim::Tick busyUntil() const { return _busyUntil; }

    /** Fraction of [0, now] the channel spent busy (rough utilization). */
    double
    utilization(sim::Tick now) const
    {
        if (now == 0)
            return 0.0;
        sim::Tick busy = _busyUntil < now ? _busyUntil : now;
        return static_cast<double>(busy) / static_cast<double>(now);
    }

  private:
    sim::Bandwidth _bw;
    sim::Tick _prop;
    sim::Tick _busyUntil = 0;
};

/**
 * Full-duplex point-to-point PCIe link. "up" carries device-initiated
 * traffic toward the host (DMA writes of read data, CQEs, MSI); "down"
 * carries host-initiated and device-fetch traffic toward the device.
 */
class PcieLink
{
  public:
    /**
     * @param lanes Gen3 lane count (x4/x8/x16)
     * @param propagation one-way latency (default ~250 ns covers PHY,
     *        switch and root-complex traversal)
     */
    explicit PcieLink(int lanes, sim::Tick propagation = sim::nanoseconds(250))
        : _up(gen3Lanes(lanes), propagation),
          _down(gen3Lanes(lanes), propagation),
          _lanes(lanes)
    {}

    LinkChannel &up() { return _up; }
    LinkChannel &down() { return _down; }
    int lanes() const { return _lanes; }

  private:
    LinkChannel _up;
    LinkChannel _down;
    int _lanes;
};

} // namespace bms::pcie

#endif // BMS_PCIE_LINK_HH
