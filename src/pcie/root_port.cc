#include "pcie/root_port.hh"

#include <utility>

namespace bms::pcie {

RootPort::RootPort(sim::Simulator &sim, std::string name, int lanes,
                   MemoryIf &memory, InterruptSinkIf &irq)
    : SimObject(sim, std::move(name)),
      _link(lanes),
      _memory(memory),
      _irq(irq)
{
}

void
RootPort::attach(PcieDeviceIf &device)
{
    BMS_ASSERT(!_device, "root-port slot already occupied");
    _device = &device;
    device.attached(*this);
}

void
RootPort::hostMmioWrite(FunctionId fn, std::uint64_t offset,
                        std::uint64_t value)
{
    BMS_ASSERT(_device, "MMIO write with no device attached");
    sim::Tick arrive = _link.down().controlArrival(now());
    sim().scheduleAt(arrive, [this, fn, offset, value] {
        _device->mmioWrite(fn, offset, value);
    });
}

std::uint64_t
RootPort::hostMmioRead(FunctionId fn, std::uint64_t offset)
{
    BMS_ASSERT(_device, "MMIO read with no device attached");
    return _device->mmioRead(fn, offset);
}

void
RootPort::dmaRead(std::uint64_t addr, std::uint32_t len, std::uint8_t *out,
                  std::function<void()> done)
{
    // Read request TLP travels upstream; completion data streams back
    // down. The downstream channel carries the payload.
    sim::Tick req = _link.up().controlArrival(now());
    sim::Tick arrive = _link.down().reserve(req, len);
    sim().scheduleAt(arrive, [this, addr, len, out, done = std::move(done)] {
        if (out)
            _memory.read(addr, len, out);
        done();
    });
}

void
RootPort::dmaWrite(std::uint64_t addr, std::uint32_t len,
                   const std::uint8_t *data, std::function<void()> done)
{
    // Posted write: payload occupies the upstream channel.
    sim::Tick arrive = _link.up().reserve(now(), len);
    sim().scheduleAt(arrive, [this, addr, len, data, done = std::move(done)] {
        if (data)
            _memory.write(addr, len, data);
        done();
    });
}

void
RootPort::msix(FunctionId fn, std::uint16_t vector)
{
    sim::Tick arrive = _link.up().controlArrival(now());
    sim().scheduleAt(arrive, [this, fn, vector] {
        _irq.raiseInterrupt(fn, vector);
    });
}

} // namespace bms::pcie
