/**
 * @file
 * Interfaces between a PCIe endpoint device and its upstream port.
 *
 * A device sees the platform through PcieUpstreamIf (DMA to host
 * memory, MSI-X). The platform sees the device through PcieDeviceIf
 * (MMIO register writes, function enumeration). Both the native SSD
 * model and the BMS-Engine card implement PcieDeviceIf; the BMS-Engine
 * host adaptor additionally *implements* PcieUpstreamIf toward its
 * back-end SSDs — that symmetry is what lets the same SSD model run
 * either directly attached to the host or behind BM-Store.
 */

#ifndef BMS_PCIE_DEVICE_HH
#define BMS_PCIE_DEVICE_HH

#include <cstdint>
#include <functional>

#include "pcie/types.hh"
#include "sim/types.hh"

namespace bms::pcie {

/**
 * Services the upstream hierarchy provides to an attached device.
 * All calls are asynchronous with modeled link timing; @p done fires
 * when the transfer completes (data valid for reads / globally
 * visible for writes).
 */
class PcieUpstreamIf
{
  public:
    virtual ~PcieUpstreamIf() = default;

    /**
     * Device-initiated read of upstream memory (SQE fetch, PRP fetch,
     * write-data fetch). @p out may be null for timing-only transfers.
     */
    virtual void dmaRead(std::uint64_t addr, std::uint32_t len,
                         std::uint8_t *out, std::function<void()> done) = 0;

    /**
     * Device-initiated posted write to upstream memory (read data,
     * CQE post). @p data may be null for timing-only transfers.
     */
    virtual void dmaWrite(std::uint64_t addr, std::uint32_t len,
                          const std::uint8_t *data,
                          std::function<void()> done) = 0;

    /** Raise MSI-X @p vector on behalf of function @p fn. */
    virtual void msix(FunctionId fn, std::uint16_t vector) = 0;
};

/**
 * A PCIe endpoint as seen by the platform: per-function MMIO register
 * file plus enumeration info. Register offsets follow the NVMe
 * controller layout (doorbells etc.) and are interpreted by the
 * device implementation.
 */
class PcieDeviceIf
{
  public:
    virtual ~PcieDeviceIf() = default;

    /** Number of PCIe functions (PFs + VFs) this endpoint exposes. */
    virtual int functionCount() const = 0;

    /**
     * Posted MMIO write to function @p fn, register offset @p offset.
     * Called by the port when the write TLP arrives at the device.
     */
    virtual void mmioWrite(FunctionId fn, std::uint64_t offset,
                           std::uint64_t value) = 0;

    /** Non-posted MMIO read (init/status paths only; untimed). */
    virtual std::uint64_t mmioRead(FunctionId fn, std::uint64_t offset) = 0;

    /** Called by the port once after attach. */
    virtual void attached(PcieUpstreamIf &upstream) = 0;
};

} // namespace bms::pcie

#endif // BMS_PCIE_DEVICE_HH
