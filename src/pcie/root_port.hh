/**
 * @file
 * Host root port: one PCIe slot of the host, binding a link, the host
 * memory, and the host interrupt controller to an endpoint device.
 */

#ifndef BMS_PCIE_ROOT_PORT_HH
#define BMS_PCIE_ROOT_PORT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "pcie/device.hh"
#include "pcie/link.hh"
#include "pcie/types.hh"
#include "sim/simulator.hh"

namespace bms::pcie {

/**
 * A root-complex port. Implements PcieUpstreamIf for the attached
 * device using the host's memory and interrupt sink, and offers the
 * host-side MMIO entry points used by drivers.
 */
class RootPort : public sim::SimObject, public PcieUpstreamIf
{
  public:
    /**
     * @param sim simulation world
     * @param name component name for logging
     * @param lanes Gen3 lane count of the slot
     * @param memory host physical memory (functional)
     * @param irq host interrupt controller
     */
    RootPort(sim::Simulator &sim, std::string name, int lanes,
             MemoryIf &memory, InterruptSinkIf &irq);

    /** Plug @p device into this slot. */
    void attach(PcieDeviceIf &device);

    PcieDeviceIf *device() const { return _device; }
    PcieLink &link() { return _link; }

    /**
     * Interrupt domain of this slot (the "bus" part of a BDF):
     * drivers key their MSI-X registrations with it so function ids
     * only need to be unique per slot.
     */
    void setIrqDomain(std::uint32_t d) { _irqDomain = d; }
    std::uint32_t irqDomain() const { return _irqDomain; }

    /**
     * Host-initiated posted MMIO write (doorbell ring). The device
     * observes the write after the downstream link delay.
     */
    void hostMmioWrite(FunctionId fn, std::uint64_t offset,
                       std::uint64_t value);

    /** Host-initiated MMIO read; functional-only (init paths). */
    std::uint64_t hostMmioRead(FunctionId fn, std::uint64_t offset);

    /** @name PcieUpstreamIf (device-initiated traffic) */
    /// @{
    void dmaRead(std::uint64_t addr, std::uint32_t len, std::uint8_t *out,
                 std::function<void()> done) override;
    void dmaWrite(std::uint64_t addr, std::uint32_t len,
                  const std::uint8_t *data,
                  std::function<void()> done) override;
    void msix(FunctionId fn, std::uint16_t vector) override;
    /// @}

  private:
    PcieLink _link;
    MemoryIf &_memory;
    InterruptSinkIf &_irq;
    PcieDeviceIf *_device = nullptr;
    std::uint32_t _irqDomain = 0;
};

} // namespace bms::pcie

#endif // BMS_PCIE_ROOT_PORT_HH
