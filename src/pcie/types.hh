/**
 * @file
 * PCIe model fundamentals: function identities, generation/lane
 * bandwidth, and the functional interfaces the fabric depends on.
 *
 * The BM-Store global-PRP mechanism (paper Fig. 4(b)) encodes a 7-bit
 * PCIe function id into reserved PRP bits, so FunctionId is the load-
 * bearing identity type across the whole model.
 */

#ifndef BMS_PCIE_TYPES_HH
#define BMS_PCIE_TYPES_HH

#include <cstdint>

#include "sim/types.hh"

namespace bms::pcie {

/** PCIe PF/VF identity; 7 bits per the BM-Store global PRP format. */
using FunctionId = std::uint8_t;

/** BMS-Engine exposes 4 PFs + 124 VFs = 128 functions (paper §IV-E). */
inline constexpr int kMaxFunctions = 128;

/**
 * Effective per-lane Gen3 bandwidth, net of 128b/130b coding and TLP
 * header overhead (~24 B per 256 B payload): ~985 MB/s raw * ~0.89.
 */
inline constexpr double kGen3LaneBytesPerSec = 880e6;

/** Effective bandwidth of a Gen3 link with @p lanes lanes. */
inline constexpr sim::Bandwidth
gen3Lanes(int lanes)
{
    return sim::Bandwidth{kGen3LaneBytesPerSec * lanes};
}

/** @name Sizes of protocol units moved over links. */
/// @{
inline constexpr std::uint32_t kSqeBytes = 64;  ///< NVMe submission entry
inline constexpr std::uint32_t kCqeBytes = 16;  ///< NVMe completion entry
inline constexpr std::uint32_t kPrpEntryBytes = 8;
inline constexpr std::uint32_t kDoorbellBytes = 8;
inline constexpr std::uint32_t kMsixBytes = 16;
/// @}

/**
 * Functional byte-addressable memory. Implemented by the host memory
 * model; also by the BMS-Engine chip memory (global PRP store).
 */
class MemoryIf
{
  public:
    virtual ~MemoryIf() = default;

    /** Copy @p len bytes at @p addr into @p out (must be non-null). */
    virtual void read(std::uint64_t addr, std::uint32_t len,
                      std::uint8_t *out) = 0;

    /** Copy @p len bytes from @p data (non-null) to @p addr. */
    virtual void write(std::uint64_t addr, std::uint32_t len,
                       const std::uint8_t *data) = 0;
};

/** Receiver of MSI-X interrupts (the host interrupt controller). */
class InterruptSinkIf
{
  public:
    virtual ~InterruptSinkIf() = default;

    /** Deliver vector @p vector raised by function @p fn. */
    virtual void raiseInterrupt(FunctionId fn, std::uint16_t vector) = 0;
};

} // namespace bms::pcie

#endif // BMS_PCIE_TYPES_HH
