/**
 * @file
 * Reusable NVMe controller state machine (device side).
 *
 * Implements the register file (CC/CSTS/AQA/ASQ/ACQ + doorbells),
 * admin/IO queue management, SQE fetching over DMA, and CQE posting
 * with MSI-X — everything common between a back-end SSD controller
 * and the 128 virtual NVMe controllers the BMS-Engine's SR-IOV layer
 * exposes to the host. Subclasses implement command execution.
 */

#ifndef BMS_NVME_CONTROLLER_HH
#define BMS_NVME_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "nvme/defs.hh"
#include "pcie/device.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace bms::nvme {

/** Static description of one namespace as exposed by a controller. */
struct NamespaceInfo
{
    std::uint32_t nsid = 0;
    std::uint64_t sizeBlocks = 0;
    std::uint32_t blockSize = kBlockSize;

    std::uint64_t sizeBytes() const { return sizeBlocks * blockSize; }
};

/**
 * NVMe controller base. Owns queue state; delegates execution of
 * fetched commands to the subclass. All upstream traffic (SQE fetch,
 * CQE post, MSI-X) is timed through the PcieUpstreamIf the owning
 * device was attached with.
 */
class ControllerModel : public sim::SimObject
{
  public:
    struct Config
    {
        pcie::FunctionId fn = 0;
        std::uint16_t maxIoQueues = 64;
        /** Internal latency from SQE arrival to execution start. */
        sim::Tick cmdProcDelay = 0;
        /** Serial/model identity reported by Identify Controller. */
        std::string model = "BMS-SIM-CTRL";
    };

    ControllerModel(sim::Simulator &sim, std::string name, Config cfg);

    /** Upstream services; must be set before the host enables CC. */
    void setUpstream(pcie::PcieUpstreamIf *up) { _up = up; }
    pcie::PcieUpstreamIf *upstream() const { return _up; }

    pcie::FunctionId functionId() const { return _cfg.fn; }

    /** @name Register file entry points (from the owning device). */
    /// @{
    void regWrite(std::uint64_t offset, std::uint64_t value);
    std::uint64_t regRead(std::uint64_t offset) const;
    /// @}

    /** @name Namespace table (managed by owner / BMS-Controller). */
    /// @{
    void addNamespace(const NamespaceInfo &ns);
    void removeNamespace(std::uint32_t nsid);
    const NamespaceInfo *findNamespace(std::uint32_t nsid) const;
    const std::vector<NamespaceInfo> &namespaces() const { return _nses; }
    /// @}

    bool enabled() const { return _enabled; }

    /**
     * Stop fetching new SQEs (doorbells still latch tails). Used for
     * resets and by the hot-upgrade I/O-context store. Outstanding
     * commands keep executing.
     */
    void pauseFetch();

    /** Resume fetching; drains any tails that advanced while paused. */
    void resumeFetch();

    bool fetchPaused() const { return _fetchPaused; }

    /** Commands fetched and not yet completed. */
    std::uint32_t inflight() const { return _inflight; }

    /** @name I/O accounting (read by the BMS I/O monitor). */
    /// @{
    std::uint64_t readOps() const { return _readOps; }
    std::uint64_t writeOps() const { return _writeOps; }
    std::uint64_t readBytes() const { return _readBytes; }
    std::uint64_t writeBytes() const { return _writeBytes; }
    /// @}

    /**
     * Post a completion for (sqid, cid). Public so the owning device
     * model (which executes commands on the controller's behalf) can
     * finish them.
     */
    void complete(std::uint16_t sqid, std::uint16_t cid, Status st,
                  std::uint32_t dw0 = 0);

    /**
     * DMA @p len bytes of @p data into the host buffer described by a
     * (page-aligned, single-page) PRP1 — used for Identify and log
     * pages.
     */
    void dmaToHost(const Sqe &sqe, const std::uint8_t *data,
                   std::uint32_t len, std::function<void()> done);

  protected:
    /**
     * Execute an admin command the base class does not handle
     * (queue management, identify, set/get features are built in).
     * Must eventually call complete().
     */
    virtual void executeAdmin(const Sqe &sqe);

    /** Execute an NVM I/O command; must eventually call complete(). */
    virtual void executeIo(const Sqe &sqe, std::uint16_t sqid) = 0;

    /** Hook invoked when the host enables / disables the controller. */
    virtual void onEnabled() {}
    virtual void onDisabled() {}

  private:
    struct SubQueue
    {
        bool valid = false;
        std::uint64_t base = 0;
        std::uint16_t size = 0;
        std::uint16_t head = 0;
        std::uint16_t tail = 0; ///< latest doorbell value
        std::uint16_t cqid = 0;
    };

    struct ComplQueue
    {
        bool valid = false;
        std::uint64_t base = 0;
        std::uint16_t size = 0;
        std::uint16_t tail = 0;
        std::uint16_t headDoorbell = 0;
        bool phase = true;
        bool irqEnabled = false;
        std::uint16_t vector = 0;
    };

    void enable();
    void disable();
    void doorbell(const DoorbellRef &ref, std::uint64_t value);
    void pump(std::uint16_t sqid);
    void dispatch(const Sqe &sqe, std::uint16_t sqid);
    void adminBuiltin(const Sqe &sqe);
    void identify(const Sqe &sqe);

    Config _cfg;
    pcie::PcieUpstreamIf *_up = nullptr;
    bool _enabled = false;
    bool _fetchPaused = false;
    std::uint64_t _aqa = 0, _asq = 0, _acq = 0, _cc = 0;

    std::vector<SubQueue> _sqs;
    std::vector<ComplQueue> _cqs;
    std::vector<NamespaceInfo> _nses;

    std::uint32_t _inflight = 0;
    std::uint64_t _readOps = 0, _writeOps = 0;
    std::uint64_t _readBytes = 0, _writeBytes = 0;
};

} // namespace bms::nvme

#endif // BMS_NVME_CONTROLLER_HH
