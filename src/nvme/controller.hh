/**
 * @file
 * Reusable NVMe controller state machine (device side).
 *
 * Implements the register file (CC/CSTS/AQA/ASQ/ACQ + doorbells),
 * admin/IO queue management, SQE fetching over DMA, and CQE posting
 * with MSI-X — everything common between a back-end SSD controller
 * and the 128 virtual NVMe controllers the BMS-Engine's SR-IOV layer
 * exposes to the host. Subclasses implement command execution.
 */

#ifndef BMS_NVME_CONTROLLER_HH
#define BMS_NVME_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "nvme/defs.hh"
#include "pcie/device.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace bms::nvme {

/** How a controller picks the next SQ to fetch from. */
enum class ArbitrationMode : std::uint8_t
{
    /** Legacy: drain each SQ fully as its doorbell rings. */
    Immediate,
    /** NVMe round-robin: equal bursts across all IO SQs. */
    RoundRobin,
    /**
     * NVMe weighted round-robin: urgent class is strict-priority,
     * high/medium/low receive bursts proportional to their weights.
     */
    WeightedRoundRobin,
};

/** Static description of one namespace as exposed by a controller. */
struct NamespaceInfo
{
    std::uint32_t nsid = 0;
    std::uint64_t sizeBlocks = 0;
    std::uint32_t blockSize = kBlockSize;

    std::uint64_t sizeBytes() const { return sizeBlocks * blockSize; }
};

/**
 * NVMe controller base. Owns queue state; delegates execution of
 * fetched commands to the subclass. All upstream traffic (SQE fetch,
 * CQE post, MSI-X) is timed through the PcieUpstreamIf the owning
 * device was attached with.
 */
class ControllerModel : public sim::SimObject
{
  public:
    struct Config
    {
        pcie::FunctionId fn = 0;
        std::uint16_t maxIoQueues = 64;
        /** Internal latency from SQE arrival to execution start. */
        sim::Tick cmdProcDelay = 0;
        /** Serial/model identity reported by Identify Controller. */
        std::string model = "BMS-SIM-CTRL";
        /** SQ fetch arbitration (admin SQ is always strict-priority). */
        ArbitrationMode arb = ArbitrationMode::Immediate;
        /** Max SQEs fetched from one SQ per arbitration service. */
        std::uint8_t arbBurst = 4;
        /** @name WRR class weights (services per grand round). */
        /// @{
        std::uint8_t wrrWeightHigh = 4;
        std::uint8_t wrrWeightMedium = 2;
        std::uint8_t wrrWeightLow = 1;
        /// @}
        /**
         * Doorbell batching window: SQ doorbells rung within this
         * many ticks of a pending arbitration pass coalesce into it
         * instead of triggering their own fetch. 0 still coalesces
         * same-tick rings (the pass runs as a separate event).
         */
        sim::Tick doorbellBatchDelay = 0;
    };

    ControllerModel(sim::Simulator &sim, std::string name, Config cfg);

    /** Upstream services; must be set before the host enables CC. */
    void setUpstream(pcie::PcieUpstreamIf *up) { _up = up; }
    pcie::PcieUpstreamIf *upstream() const { return _up; }

    pcie::FunctionId functionId() const { return _cfg.fn; }

    /** @name Register file entry points (from the owning device). */
    /// @{
    void regWrite(std::uint64_t offset, std::uint64_t value);
    std::uint64_t regRead(std::uint64_t offset) const;
    /// @}

    /** @name Namespace table (managed by owner / BMS-Controller). */
    /// @{
    void addNamespace(const NamespaceInfo &ns);
    void removeNamespace(std::uint32_t nsid);
    const NamespaceInfo *findNamespace(std::uint32_t nsid) const;
    const std::vector<NamespaceInfo> &namespaces() const { return _nses; }
    /// @}

    bool enabled() const { return _enabled; }

    /**
     * Stop fetching new SQEs (doorbells still latch tails). Used for
     * resets and by the hot-upgrade I/O-context store. Outstanding
     * commands keep executing.
     */
    void pauseFetch();

    /** Resume fetching; drains any tails that advanced while paused. */
    void resumeFetch();

    bool fetchPaused() const { return _fetchPaused; }

    /** Commands fetched and not yet completed. */
    std::uint32_t inflight() const { return _inflight; }

    /** @name I/O accounting (read by the BMS I/O monitor). */
    /// @{
    std::uint64_t readOps() const { return _readOps; }
    std::uint64_t writeOps() const { return _writeOps; }
    std::uint64_t readBytes() const { return _readBytes; }
    std::uint64_t writeBytes() const { return _writeBytes; }
    /// @}

    /** Snapshot of one submission queue for monitoring and tests. */
    struct SqSnapshot
    {
        bool valid = false;
        std::uint8_t prio = kQPrioMedium;
        std::uint32_t backlog = 0;    ///< SQEs rung but not yet fetched
        std::uint32_t maxBacklog = 0; ///< high-water mark of backlog
        std::uint64_t fetched = 0;    ///< SQEs fetched since creation
    };

    /** @name Arbitration / multi-queue accounting. */
    /// @{
    /** Number of valid IO submission queues (excludes admin). */
    std::uint16_t ioSqCount() const;
    /** Per-SQ snapshot; @p sqid may be any qid < 1 + maxIoQueues. */
    SqSnapshot sqSnapshot(std::uint16_t sqid) const;
    /** Deepest un-fetched backlog any IO SQ ever reached. */
    std::uint32_t maxSqBacklog() const;
    /** Arbitration passes executed. */
    std::uint64_t arbRounds() const { return _arbRounds; }
    /** SQ doorbell rings observed (arbitrated modes only). */
    std::uint64_t sqDoorbells() const { return _sqDoorbells; }
    /** Rings absorbed by an already-pending arbitration pass. */
    std::uint64_t doorbellsCoalesced() const { return _doorbellsCoalesced; }
    /** Coalesced SQE fetch DMAs issued. */
    std::uint64_t fetchBatches() const { return _fetchBatches; }
    /** Total SQEs fetched through the arbitrated path. */
    std::uint64_t fetchedSqes() const { return _fetchedSqes; }
    /// @}

    /**
     * Post a completion for (sqid, cid). Public so the owning device
     * model (which executes commands on the controller's behalf) can
     * finish them.
     */
    void complete(std::uint16_t sqid, std::uint16_t cid, Status st,
                  std::uint32_t dw0 = 0);

    /**
     * DMA @p len bytes of @p data into the host buffer described by a
     * (page-aligned, single-page) PRP1 — used for Identify and log
     * pages.
     */
    void dmaToHost(const Sqe &sqe, const std::uint8_t *data,
                   std::uint32_t len, std::function<void()> done);

  protected:
    /**
     * Execute an admin command the base class does not handle
     * (queue management, identify, set/get features are built in).
     * Must eventually call complete().
     */
    virtual void executeAdmin(const Sqe &sqe);

    /** Execute an NVM I/O command; must eventually call complete(). */
    virtual void executeIo(const Sqe &sqe, std::uint16_t sqid) = 0;

    /** Hook invoked when the host enables / disables the controller. */
    virtual void onEnabled() {}
    virtual void onDisabled() {}

  private:
    struct SubQueue
    {
        bool valid = false;
        std::uint64_t base = 0;
        std::uint16_t size = 0;
        std::uint16_t head = 0;
        std::uint16_t tail = 0; ///< latest doorbell value
        std::uint16_t cqid = 0;
        std::uint8_t prio = kQPrioMedium; ///< QPRIO (WRR class)
        std::uint32_t maxBacklog = 0;     ///< deepest un-fetched backlog
        std::uint64_t fetched = 0;        ///< SQEs fetched lifetime

        std::uint32_t
        backlog() const
        {
            if (!valid || size == 0)
                return 0;
            return (tail + size - head) % size;
        }
    };

    struct ComplQueue
    {
        bool valid = false;
        std::uint64_t base = 0;
        std::uint16_t size = 0;
        std::uint16_t tail = 0;
        std::uint16_t headDoorbell = 0;
        bool phase = true;
        bool irqEnabled = false;
        std::uint16_t vector = 0;
    };

    /** Sentinel for serviceRound(): any priority class qualifies. */
    static constexpr std::uint8_t kPrioAny = 0xff;

    void enable();
    void disable();
    void doorbell(const DoorbellRef &ref, std::uint64_t value);
    void pump(std::uint16_t sqid);
    void dispatch(const Sqe &sqe, std::uint16_t sqid);
    void adminBuiltin(const Sqe &sqe);
    void identify(const Sqe &sqe);
    /** Request an arbitration pass (doorbell-batched). */
    void signalArbitration();
    /** One arbitration pass over the IO SQs; re-arms while backlogged. */
    void arbitrate();
    /**
     * Service SQs of class @p prio (kPrioAny matches all) in
     * round-robin order from @p *cursor, one burst per service, until
     * @p credits services are spent or a full cycle finds no backlog.
     * @return services performed.
     */
    std::uint32_t serviceRound(std::uint8_t prio, std::uint32_t credits,
                               std::uint16_t *cursor);
    /**
     * Fetch up to @p maxN SQEs from @p sqid as one coalesced DMA
     * (clamped at the ring-wrap point; the remainder waits for the
     * next service). Dispatch order within the SQ is preserved.
     */
    void fetchBurst(std::uint16_t sqid, std::uint32_t maxN);

    Config _cfg;
    pcie::PcieUpstreamIf *_up = nullptr;
    bool _enabled = false;
    bool _fetchPaused = false;
    std::uint64_t _aqa = 0, _asq = 0, _acq = 0, _cc = 0;

    std::vector<SubQueue> _sqs;
    std::vector<ComplQueue> _cqs;
    std::vector<NamespaceInfo> _nses;

    std::uint32_t _inflight = 0;
    std::uint64_t _readOps = 0, _writeOps = 0;
    std::uint64_t _readBytes = 0, _writeBytes = 0;

    bool _arbScheduled = false;
    std::uint16_t _rrCursor = 1;          ///< plain-RR position
    std::uint16_t _wrrCursor[4] = {1, 1, 1, 1}; ///< per-class positions
    std::uint64_t _arbRounds = 0;
    std::uint64_t _sqDoorbells = 0;
    std::uint64_t _doorbellsCoalesced = 0;
    std::uint64_t _fetchBatches = 0;
    std::uint64_t _fetchedSqes = 0;
};

} // namespace bms::nvme

#endif // BMS_NVME_CONTROLLER_HH
