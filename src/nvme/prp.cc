#include "nvme/prp.hh"

#include <cstring>

#include "sim/check.hh"

namespace bms::nvme {

std::uint32_t
prpPageCount(std::uint64_t addr, std::uint64_t len)
{
    if (len == 0)
        return 0;
    std::uint64_t first = addr / kPageSize;
    std::uint64_t last = (addr + len - 1) / kPageSize;
    return static_cast<std::uint32_t>(last - first + 1);
}

bool
needsPrpList(std::uint64_t addr, std::uint64_t len)
{
    return prpPageCount(addr, len) > 2;
}

PrpPair
buildPrp(std::uint64_t addr, std::uint64_t len, std::uint64_t list_addr,
         pcie::MemoryIf &memory)
{
    PrpPair pair;
    pair.prp1 = addr;
    std::uint32_t pages = prpPageCount(addr, len);
    if (pages <= 1) {
        pair.prp2 = 0;
        return pair;
    }
    std::uint64_t second_page = (addr / kPageSize + 1) * kPageSize;
    if (pages == 2) {
        pair.prp2 = second_page;
        return pair;
    }
    // PRP list: entries for pages 2..N (page-aligned addresses).
    pair.hasList = true;
    pair.prp2 = list_addr;
    pair.listEntries = pages - 1;
    BMS_ASSERT_LE(pair.listEntries * sizeof(std::uint64_t), kPageSize,
                  "single-page PRP lists only (transfers up to 2 MiB)");
    std::vector<std::uint64_t> entries(pair.listEntries);
    for (std::uint32_t i = 0; i < pair.listEntries; ++i)
        entries[i] = second_page + static_cast<std::uint64_t>(i) * kPageSize;
    memory.write(list_addr,
                 static_cast<std::uint32_t>(entries.size() *
                                            sizeof(std::uint64_t)),
                 reinterpret_cast<const std::uint8_t *>(entries.data()));
    return pair;
}

namespace {

void
appendSegment(std::vector<DmaSegment> &segs, std::uint64_t addr,
              std::uint32_t len)
{
    if (!segs.empty() && segs.back().addr + segs.back().len == addr) {
        segs.back().len += len;
    } else {
        segs.push_back(DmaSegment{addr, len});
    }
}

} // namespace

std::vector<DmaSegment>
decodePrp(std::uint64_t prp1, std::uint64_t prp2, std::uint64_t len,
          const std::vector<std::uint64_t> &list_entries)
{
    std::vector<DmaSegment> segs;
    if (len == 0)
        return segs;

    std::uint64_t offset = prp1 % kPageSize;
    std::uint64_t first_len = kPageSize - offset;
    if (first_len > len)
        first_len = len;
    appendSegment(segs, prp1, static_cast<std::uint32_t>(first_len));
    std::uint64_t remaining = len - first_len;
    if (remaining == 0)
        return segs;

    if (list_entries.empty()) {
        // PRP2 is a direct second-page pointer.
        BMS_ASSERT_LE(remaining, kPageSize,
                      "transfer needs a PRP list but PRP2 is direct");
        appendSegment(segs, prp2, static_cast<std::uint32_t>(remaining));
        return segs;
    }

    for (std::uint64_t entry : list_entries) {
        if (remaining == 0)
            break;
        std::uint64_t chunk = remaining < kPageSize ? remaining : kPageSize;
        appendSegment(segs, entry, static_cast<std::uint32_t>(chunk));
        remaining -= chunk;
    }
    BMS_ASSERT_EQ(remaining, 0u, "PRP list too short for transfer");
    return segs;
}

} // namespace bms::nvme
