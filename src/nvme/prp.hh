/**
 * @file
 * PRP (Physical Region Page) construction and decoding.
 *
 * The host NVMe driver builds PRP1/PRP2 (+ a PRP list in host memory
 * when a transfer spans more than two pages). Devices decode PRPs
 * into DMA segments. The BMS-Engine rewrites each PRP entry into a
 * *global PRP* (see core/engine/global_prp.hh), so this module keeps
 * entry arithmetic separate from data movement.
 */

#ifndef BMS_NVME_PRP_HH
#define BMS_NVME_PRP_HH

#include <cstdint>
#include <vector>

#include "nvme/defs.hh"
#include "pcie/types.hh"

namespace bms::nvme {

/** One contiguous DMA segment of a data transfer. */
struct DmaSegment
{
    std::uint64_t addr = 0;
    std::uint32_t len = 0;

    bool operator==(const DmaSegment &) const = default;
};

/** Result of building PRPs for a transfer. */
struct PrpPair
{
    std::uint64_t prp1 = 0;
    std::uint64_t prp2 = 0;
    bool hasList = false;
    std::uint32_t listEntries = 0; ///< entries stored at the list address
};

/** Number of pages touched by a transfer starting at @p addr. */
std::uint32_t prpPageCount(std::uint64_t addr, std::uint64_t len);

/** True if a transfer needs a PRP list (more than two pages). */
bool needsPrpList(std::uint64_t addr, std::uint64_t len);

/**
 * Build PRP1/PRP2 for a physically contiguous buffer [addr, addr+len).
 * If a PRP list is required it is written to @p list_addr in
 * @p memory (caller owns that allocation; must fit within one page).
 */
PrpPair buildPrp(std::uint64_t addr, std::uint64_t len,
                 std::uint64_t list_addr, pcie::MemoryIf &memory);

/**
 * Decode PRPs into DMA segments, coalescing physically contiguous
 * pages. @p list_entries are the raw 8-byte entries of the PRP list
 * (already fetched by the caller; empty when !hasList).
 *
 * @param prp1 first PRP entry (may carry a page offset)
 * @param prp2 second PRP entry or list pointer
 * @param len total transfer bytes
 * @param list_entries fetched PRP-list entries, if any
 */
std::vector<DmaSegment>
decodePrp(std::uint64_t prp1, std::uint64_t prp2, std::uint64_t len,
          const std::vector<std::uint64_t> &list_entries);

} // namespace bms::nvme

#endif // BMS_NVME_PRP_HH
