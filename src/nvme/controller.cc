#include "nvme/controller.hh"

#include <algorithm>
#include <cstring>

#include "sim/check.hh"

namespace bms::nvme {

ControllerModel::ControllerModel(sim::Simulator &sim, std::string name,
                                 Config cfg)
    : SimObject(sim, std::move(name)), _cfg(cfg)
{
    _sqs.resize(_cfg.maxIoQueues + 1u);
    _cqs.resize(_cfg.maxIoQueues + 1u);
    registerStat("readOps", [this] { return double(_readOps); });
    registerStat("writeOps", [this] { return double(_writeOps); });
    registerStat("readBytes", [this] { return double(_readBytes); });
    registerStat("writeBytes", [this] { return double(_writeBytes); });
    registerStat("inflight", [this] { return double(_inflight); });
    registerStat("arbRounds", [this] { return double(_arbRounds); });
    registerStat("fetchBatches", [this] { return double(_fetchBatches); });
    registerStat("fetchedSqes", [this] { return double(_fetchedSqes); });
}

std::uint16_t
ControllerModel::ioSqCount() const
{
    std::uint16_t n = 0;
    for (std::size_t qid = 1; qid < _sqs.size(); ++qid)
        if (_sqs[qid].valid)
            ++n;
    return n;
}

ControllerModel::SqSnapshot
ControllerModel::sqSnapshot(std::uint16_t sqid) const
{
    SqSnapshot s;
    if (sqid >= _sqs.size())
        return s;
    const SubQueue &sq = _sqs[sqid];
    s.valid = sq.valid;
    s.prio = sq.prio;
    s.backlog = sq.backlog();
    s.maxBacklog = sq.maxBacklog;
    s.fetched = sq.fetched;
    return s;
}

std::uint32_t
ControllerModel::maxSqBacklog() const
{
    std::uint32_t deepest = 0;
    for (std::size_t qid = 1; qid < _sqs.size(); ++qid)
        deepest = std::max(deepest, _sqs[qid].maxBacklog);
    return deepest;
}

void
ControllerModel::addNamespace(const NamespaceInfo &ns)
{
    BMS_ASSERT(ns.nsid != 0 && !findNamespace(ns.nsid),
               "nsid ", ns.nsid, " is zero or already present");
    _nses.push_back(ns);
}

void
ControllerModel::removeNamespace(std::uint32_t nsid)
{
    std::erase_if(_nses,
                  [nsid](const NamespaceInfo &n) { return n.nsid == nsid; });
}

const NamespaceInfo *
ControllerModel::findNamespace(std::uint32_t nsid) const
{
    for (const auto &n : _nses)
        if (n.nsid == nsid)
            return &n;
    return nullptr;
}

void
ControllerModel::regWrite(std::uint64_t offset, std::uint64_t value)
{
    if (auto ref = decodeDoorbell(offset); ref.valid) {
        doorbell(ref, value);
        return;
    }
    switch (offset) {
      case kRegCc:
        _cc = value;
        if ((value & kCcEnable) && !_enabled)
            enable();
        else if (!(value & kCcEnable) && _enabled)
            disable();
        break;
      case kRegAqa:
        _aqa = value;
        break;
      case kRegAsq:
        _asq = value;
        break;
      case kRegAcq:
        _acq = value;
        break;
      default:
        logWarn("write to unimplemented register 0x", offset);
        break;
    }
}

std::uint64_t
ControllerModel::regRead(std::uint64_t offset) const
{
    switch (offset) {
      case kRegCap:
        // MQES (max queue entries - 1) in [15:0]; CSS/DSTRD zero.
        return 4095;
      case kRegCc:
        return _cc;
      case kRegCsts:
        return _enabled ? kCstsReady : 0;
      case kRegAqa:
        return _aqa;
      case kRegAsq:
        return _asq;
      case kRegAcq:
        return _acq;
      default:
        return 0;
    }
}

void
ControllerModel::enable()
{
    BMS_ASSERT(_up, "controller enabled before attach");
    _enabled = true;
    // Admin queues from AQA/ASQ/ACQ. AQA: [11:0] SQ size-1,
    // [27:16] CQ size-1.
    auto &sq = _sqs[0];
    sq.valid = true;
    sq.base = _asq;
    sq.size = static_cast<std::uint16_t>((_aqa & 0xfff) + 1);
    sq.head = sq.tail = 0;
    sq.cqid = 0;
    auto &cq = _cqs[0];
    cq.valid = true;
    cq.base = _acq;
    cq.size = static_cast<std::uint16_t>(((_aqa >> 16) & 0xfff) + 1);
    cq.tail = 0;
    cq.headDoorbell = 0;
    cq.phase = true;
    cq.irqEnabled = true;
    cq.vector = 0;
    logDebug("enabled: admin SQ ", sq.size, " entries, CQ ", cq.size);
    onEnabled();
}

void
ControllerModel::disable()
{
    _enabled = false;
    for (auto &sq : _sqs)
        sq = SubQueue{};
    for (auto &cq : _cqs)
        cq = ComplQueue{};
    _inflight = 0;
    _rrCursor = 1;
    for (auto &c : _wrrCursor)
        c = 1;
    onDisabled();
}

void
ControllerModel::doorbell(const DoorbellRef &ref, std::uint64_t value)
{
    if (!_enabled || ref.qid >= _sqs.size())
        return;
    if (ref.isSq) {
        auto &sq = _sqs[ref.qid];
        if (!sq.valid)
            return;
        sq.tail = static_cast<std::uint16_t>(value % sq.size);
        sq.maxBacklog = std::max(sq.maxBacklog, sq.backlog());
        // Admin commands are strict-priority in every mode; IO SQs go
        // through the configured arbiter.
        if (ref.qid == 0 || _cfg.arb == ArbitrationMode::Immediate) {
            pump(ref.qid);
        } else {
            ++_sqDoorbells;
            signalArbitration();
        }
    } else {
        auto &cq = _cqs[ref.qid];
        if (!cq.valid)
            return;
        cq.headDoorbell = static_cast<std::uint16_t>(value % cq.size);
    }
}

void
ControllerModel::pump(std::uint16_t sqid)
{
    auto &sq = _sqs[sqid];
    while (sq.valid && !_fetchPaused && sq.head != sq.tail) {
        std::uint64_t addr =
            sq.base + static_cast<std::uint64_t>(sq.head) * sizeof(Sqe);
        sq.head = static_cast<std::uint16_t>((sq.head + 1) % sq.size);
        auto buf = std::make_shared<std::array<std::uint8_t, sizeof(Sqe)>>();
        _up->dmaRead(addr, sizeof(Sqe), buf->data(), [this, buf, sqid] {
            Sqe sqe = fromBytes<Sqe>(buf->data());
            if (_cfg.cmdProcDelay == 0) {
                dispatch(sqe, sqid);
            } else {
                schedule(_cfg.cmdProcDelay,
                         [this, sqe, sqid] { dispatch(sqe, sqid); });
            }
        });
    }
}

void
ControllerModel::pauseFetch()
{
    _fetchPaused = true;
}

void
ControllerModel::resumeFetch()
{
    if (!_fetchPaused)
        return;
    _fetchPaused = false;
    if (_cfg.arb == ArbitrationMode::Immediate) {
        for (std::uint16_t qid = 0; qid < _sqs.size(); ++qid)
            if (_sqs[qid].valid)
                pump(qid);
        return;
    }
    if (_sqs[0].valid)
        pump(0); // admin drains immediately in every mode
    signalArbitration();
}

void
ControllerModel::signalArbitration()
{
    if (_arbScheduled) {
        ++_doorbellsCoalesced;
        return;
    }
    if (!_enabled || _fetchPaused)
        return; // resumeFetch()/enable() re-signals
    _arbScheduled = true;
    schedule(_cfg.doorbellBatchDelay, [this] {
        _arbScheduled = false;
        arbitrate();
    });
}

void
ControllerModel::arbitrate()
{
    if (!_enabled || _fetchPaused)
        return;
    ++_arbRounds;
    if (_cfg.arb == ArbitrationMode::RoundRobin) {
        // One grand round: every backlogged IO SQ gets one burst.
        serviceRound(kPrioAny,
                     static_cast<std::uint32_t>(_sqs.size() - 1),
                     &_rrCursor);
    } else {
        // Urgent is strict-priority: drain it before the weighted
        // classes see any service at all.
        serviceRound(kQPrioUrgent, ~0u, &_wrrCursor[kQPrioUrgent]);
        serviceRound(kQPrioHigh, _cfg.wrrWeightHigh,
                     &_wrrCursor[kQPrioHigh]);
        serviceRound(kQPrioMedium, _cfg.wrrWeightMedium,
                     &_wrrCursor[kQPrioMedium]);
        serviceRound(kQPrioLow, _cfg.wrrWeightLow,
                     &_wrrCursor[kQPrioLow]);
    }
    for (std::size_t qid = 1; qid < _sqs.size(); ++qid) {
        if (_sqs[qid].valid && _sqs[qid].backlog() != 0) {
            signalArbitration(); // leftover backlog: re-arm the pass
            break;
        }
    }
}

std::uint32_t
ControllerModel::serviceRound(std::uint8_t prio, std::uint32_t credits,
                              std::uint16_t *cursor)
{
    const auto n = static_cast<std::uint16_t>(_sqs.size() - 1);
    if (n == 0 || credits == 0)
        return 0;
    std::uint32_t services = 0;
    std::uint16_t qid = *cursor;
    if (qid == 0 || qid > n)
        qid = 1;
    std::uint16_t idle = 0; // consecutive queues without backlog
    while (credits > 0 && idle < n) {
        SubQueue &sq = _sqs[qid];
        if (sq.valid && sq.backlog() != 0 &&
            (prio == kPrioAny || sq.prio == prio)) {
            fetchBurst(qid, _cfg.arbBurst);
            --credits;
            ++services;
            idle = 0;
        } else {
            ++idle;
        }
        qid = (qid == n) ? std::uint16_t{1}
                         : static_cast<std::uint16_t>(qid + 1);
    }
    *cursor = qid;
    return services;
}

void
ControllerModel::fetchBurst(std::uint16_t sqid, std::uint32_t maxN)
{
    SubQueue &sq = _sqs[sqid];
    std::uint32_t n = std::min(
        {sq.backlog(), maxN,
         static_cast<std::uint32_t>(sq.size - sq.head)});
    if (n == 0)
        return;
    std::uint64_t addr =
        sq.base + static_cast<std::uint64_t>(sq.head) * sizeof(Sqe);
    sq.head = static_cast<std::uint16_t>((sq.head + n) % sq.size);
    sq.fetched += n;
    ++_fetchBatches;
    _fetchedSqes += n;
    auto buf =
        std::make_shared<std::vector<std::uint8_t>>(n * sizeof(Sqe));
    _up->dmaRead(addr, n * sizeof(Sqe), buf->data(),
                 [this, buf, sqid, n] {
        // One completion delivers the whole burst in ring order; the
        // event queue's same-tick FIFO keeps intra-SQ order intact.
        for (std::uint32_t i = 0; i < n; ++i) {
            Sqe sqe = fromBytes<Sqe>(buf->data() + i * sizeof(Sqe));
            if (_cfg.cmdProcDelay == 0) {
                dispatch(sqe, sqid);
            } else {
                schedule(_cfg.cmdProcDelay,
                         [this, sqe, sqid] { dispatch(sqe, sqid); });
            }
        }
    });
}

void
ControllerModel::dispatch(const Sqe &sqe, std::uint16_t sqid)
{
    ++_inflight;
    if (sqid == 0) {
        adminBuiltin(sqe);
        return;
    }
    switch (static_cast<IoOpcode>(sqe.opcode)) {
      case IoOpcode::Read:
        ++_readOps;
        _readBytes += sqe.dataBytes();
        break;
      case IoOpcode::Write:
        ++_writeOps;
        _writeBytes += sqe.dataBytes();
        break;
      default:
        break;
    }
    executeIo(sqe, sqid);
}

void
ControllerModel::adminBuiltin(const Sqe &sqe)
{
    switch (static_cast<AdminOpcode>(sqe.opcode)) {
      case AdminOpcode::CreateIoCq: {
        std::uint16_t qid = sqe.cdw10 & 0xffff;
        std::uint16_t qsize =
            static_cast<std::uint16_t>(((sqe.cdw10 >> 16) & 0xffff) + 1);
        if (qid == 0 || qid >= _cqs.size()) {
            complete(0, sqe.cid, Status::InvalidField);
            return;
        }
        auto &cq = _cqs[qid];
        cq.valid = true;
        cq.base = sqe.prp1;
        cq.size = qsize;
        cq.tail = 0;
        cq.headDoorbell = 0;
        cq.phase = true;
        cq.irqEnabled = (sqe.cdw11 >> 1) & 0x1;
        cq.vector = static_cast<std::uint16_t>(sqe.cdw11 >> 16);
        complete(0, sqe.cid, Status::Success);
        return;
      }
      case AdminOpcode::CreateIoSq: {
        std::uint16_t qid = sqe.cdw10 & 0xffff;
        std::uint16_t qsize =
            static_cast<std::uint16_t>(((sqe.cdw10 >> 16) & 0xffff) + 1);
        std::uint16_t cqid = static_cast<std::uint16_t>(sqe.cdw11 >> 16);
        if (qid == 0 || qid >= _sqs.size() || !_cqs[cqid].valid) {
            complete(0, sqe.cid, Status::InvalidField);
            return;
        }
        auto &sq = _sqs[qid];
        sq = SubQueue{};
        sq.valid = true;
        sq.base = sqe.prp1;
        sq.size = qsize;
        sq.head = sq.tail = 0;
        sq.cqid = cqid;
        sq.prio = static_cast<std::uint8_t>((sqe.cdw11 >> 1) & 0x3);
        complete(0, sqe.cid, Status::Success);
        return;
      }
      case AdminOpcode::DeleteIoSq: {
        std::uint16_t qid = sqe.cdw10 & 0xffff;
        if (qid > 0 && qid < _sqs.size())
            _sqs[qid] = SubQueue{};
        complete(0, sqe.cid, Status::Success);
        return;
      }
      case AdminOpcode::DeleteIoCq: {
        std::uint16_t qid = sqe.cdw10 & 0xffff;
        if (qid > 0 && qid < _cqs.size())
            _cqs[qid] = ComplQueue{};
        complete(0, sqe.cid, Status::Success);
        return;
      }
      case AdminOpcode::SetFeatures: {
        std::uint8_t fid = sqe.cdw10 & 0xff;
        if (fid == 0x07) { // Number of Queues
            std::uint32_t grant =
                (static_cast<std::uint32_t>(_cfg.maxIoQueues - 1) << 16) |
                (_cfg.maxIoQueues - 1);
            complete(0, sqe.cid, Status::Success, grant);
        } else {
            complete(0, sqe.cid, Status::Success);
        }
        return;
      }
      case AdminOpcode::GetFeatures:
        complete(0, sqe.cid, Status::Success);
        return;
      case AdminOpcode::Identify:
        identify(sqe);
        return;
      default:
        executeAdmin(sqe);
        return;
    }
}

void
ControllerModel::executeAdmin(const Sqe &sqe)
{
    logWarn("unsupported admin opcode 0x",
            static_cast<unsigned>(sqe.opcode));
    complete(0, sqe.cid, Status::InvalidOpcode);
}

void
ControllerModel::identify(const Sqe &sqe)
{
    auto data = std::make_shared<std::vector<std::uint8_t>>(kPageSize, 0);
    auto cns = static_cast<IdentifyCns>(sqe.cdw10 & 0xff);
    switch (cns) {
      case IdentifyCns::Controller: {
        // Bytes 24..63: model number (ASCII).
        std::size_t n = std::min<std::size_t>(_cfg.model.size(), 40);
        std::memcpy(data->data() + 24, _cfg.model.data(), n);
        // Byte 516..519: number of namespaces.
        std::uint32_t nn = static_cast<std::uint32_t>(_nses.size());
        std::memcpy(data->data() + 516, &nn, sizeof(nn));
        break;
      }
      case IdentifyCns::Namespace: {
        const NamespaceInfo *ns = findNamespace(sqe.nsid);
        if (!ns) {
            complete(0, sqe.cid, Status::InvalidNamespace);
            return;
        }
        std::uint64_t nsze = ns->sizeBlocks;
        std::memcpy(data->data() + 0, &nsze, sizeof(nsze));  // NSZE
        std::memcpy(data->data() + 8, &nsze, sizeof(nsze));  // NCAP
        std::memcpy(data->data() + 16, &nsze, sizeof(nsze)); // NUSE
        break;
      }
      case IdentifyCns::ActiveNsList: {
        std::uint32_t *ids =
            reinterpret_cast<std::uint32_t *>(data->data());
        std::size_t i = 0;
        for (const auto &n : _nses) {
            if (i >= kPageSize / sizeof(std::uint32_t))
                break;
            ids[i++] = n.nsid;
        }
        break;
      }
      default:
        complete(0, sqe.cid, Status::InvalidField);
        return;
    }
    std::uint16_t cid = sqe.cid;
    dmaToHost(sqe, data->data(), kPageSize,
              [this, cid, data] { complete(0, cid, Status::Success); });
}

void
ControllerModel::dmaToHost(const Sqe &sqe, const std::uint8_t *data,
                           std::uint32_t len, std::function<void()> done)
{
    BMS_ASSERT(len <= kPageSize && sqe.prp1 % kPageSize == 0,
               "admin data buffers are single page-aligned pages");
    _up->dmaWrite(sqe.prp1, len, data, std::move(done));
}

void
ControllerModel::complete(std::uint16_t sqid, std::uint16_t cid, Status st,
                          std::uint32_t dw0)
{
    BMS_ASSERT(sqid < _sqs.size() && _sqs[sqid].valid,
               "completion for invalid SQ ", sqid);
    BMS_ASSERT(_inflight > 0, "completion with nothing in flight");
    --_inflight;
    auto &sq = _sqs[sqid];
    auto &cq = _cqs[sq.cqid];
    BMS_ASSERT(cq.valid, "completion into invalid CQ");

    Cqe cqe;
    cqe.dw0 = dw0;
    cqe.sqHead = sq.head;
    cqe.sqId = sqid;
    cqe.cid = cid;
    cqe.setStatusPhase(st, cq.phase);

    std::uint64_t addr =
        cq.base + static_cast<std::uint64_t>(cq.tail) * sizeof(Cqe);
    cq.tail = static_cast<std::uint16_t>((cq.tail + 1) % cq.size);
    if (cq.tail == 0)
        cq.phase = !cq.phase;

    auto buf = std::make_shared<std::array<std::uint8_t, sizeof(Cqe)>>();
    toBytes(cqe, buf->data());
    bool irq = cq.irqEnabled;
    std::uint16_t vector = cq.vector;
    _up->dmaWrite(addr, sizeof(Cqe), buf->data(), [this, buf, irq, vector] {
        if (irq)
            _up->msix(_cfg.fn, vector);
    });
}

} // namespace bms::nvme
