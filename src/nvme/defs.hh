/**
 * @file
 * NVMe protocol definitions: opcodes, status codes, register layout,
 * and wire-format SQE/CQE structures.
 *
 * The structures are exact-size PODs (static_asserted) because queues
 * live in simulated host memory as raw bytes and are moved by DMA,
 * exactly as on real hardware. This is what makes the BMS-Engine's
 * command rewriting (LBA field update, PRP rewriting) meaningful.
 */

#ifndef BMS_NVME_DEFS_HH
#define BMS_NVME_DEFS_HH

#include <cstdint>
#include <cstring>

namespace bms::nvme {

/** Host / controller memory page size used for PRPs. */
inline constexpr std::uint32_t kPageSize = 4096;

/** Logical block size all namespaces use (P4510 formatted 4K). */
inline constexpr std::uint32_t kBlockSize = 4096;

/** @name SQ priority classes (CreateIoSq CDW11 QPRIO, bits 02:01). */
/// @{
inline constexpr std::uint8_t kQPrioUrgent = 0;
inline constexpr std::uint8_t kQPrioHigh = 1;
inline constexpr std::uint8_t kQPrioMedium = 2;
inline constexpr std::uint8_t kQPrioLow = 3;
/// @}

/** @name I/O command opcodes (NVM command set). */
/// @{
enum class IoOpcode : std::uint8_t
{
    Flush = 0x00,
    Write = 0x01,
    Read = 0x02,
    /**
     * Back-end scrub: the drive zeroes the LBA range with FTL-unmap
     * timing (no data transfer, no PRPs). The BMS-Engine issues it
     * when recycling a chunk into a thin namespace and for the
     * sub-chunk part of a Dataset-Management deallocate; subsequent
     * reads of the range return zeroes (DLFEAT 001b behaviour).
     */
    WriteZeroes = 0x08,
    /** Dataset Management; only the Deallocate attribute is honoured. */
    Dsm = 0x09,
};
/// @}

/** @name Dataset Management (DSM) field layout. */
/// @{
/** CDW11 bit 2: Attribute – Deallocate. */
inline constexpr std::uint32_t kDsmAttrDeallocate = 0x4;
/** Max ranges per DSM command (spec: 256, NR is 0-based in CDW10[7:0]). */
inline constexpr std::uint32_t kDsmMaxRanges = 256;

/**
 * One 16-byte DSM range descriptor; the command's data buffer holds
 * NR+1 of these, fetched by the controller via PRP1.
 */
struct DsmRange
{
    std::uint32_t cattr = 0; ///< context attributes (ignored)
    std::uint32_t nlb = 0;   ///< number of logical blocks (1-based)
    std::uint64_t slba = 0;  ///< starting LBA
};

static_assert(sizeof(DsmRange) == 16, "DSM range must be 16 bytes");
/// @}

/** @name Admin command opcodes. */
/// @{
enum class AdminOpcode : std::uint8_t
{
    DeleteIoSq = 0x00,
    CreateIoSq = 0x01,
    GetLogPage = 0x02,
    DeleteIoCq = 0x04,
    CreateIoCq = 0x05,
    Identify = 0x06,
    SetFeatures = 0x09,
    GetFeatures = 0x0A,
    FirmwareCommit = 0x10,
    FirmwareDownload = 0x11,
    NamespaceMgmt = 0x0D,
    NamespaceAttach = 0x15,
};
/// @}

/** Generic command status (SCT 0). */
enum class Status : std::uint16_t
{
    Success = 0x0,
    InvalidOpcode = 0x1,
    InvalidField = 0x2,
    DataTransferError = 0x4,
    AbortedByRequest = 0x7,
    InvalidNamespace = 0xB,
    LbaOutOfRange = 0x80,
    CapacityExceeded = 0x81,
    NamespaceNotReady = 0x82,
};

/** Identify CNS values we implement. */
enum class IdentifyCns : std::uint8_t
{
    Namespace = 0x00,
    Controller = 0x01,
    ActiveNsList = 0x02,
};

/** @name Controller register offsets (BAR0). */
/// @{
inline constexpr std::uint64_t kRegCap = 0x00;
inline constexpr std::uint64_t kRegCc = 0x14;
inline constexpr std::uint64_t kRegCsts = 0x1C;
inline constexpr std::uint64_t kRegAqa = 0x24;
inline constexpr std::uint64_t kRegAsq = 0x28;
inline constexpr std::uint64_t kRegAcq = 0x30;
inline constexpr std::uint64_t kRegDoorbellBase = 0x1000;
inline constexpr std::uint64_t kDoorbellStride = 4;
/// @}

/** CC.EN bit. */
inline constexpr std::uint64_t kCcEnable = 0x1;
/** CSTS.RDY bit. */
inline constexpr std::uint64_t kCstsReady = 0x1;

/** Doorbell decoding helper results. */
struct DoorbellRef
{
    bool valid = false;
    bool isSq = false;
    std::uint16_t qid = 0;
};

/** Decode a BAR0 offset into an SQ-tail / CQ-head doorbell. */
inline DoorbellRef
decodeDoorbell(std::uint64_t offset)
{
    DoorbellRef ref;
    if (offset < kRegDoorbellBase)
        return ref;
    std::uint64_t idx = (offset - kRegDoorbellBase) / kDoorbellStride;
    ref.valid = true;
    ref.isSq = (idx % 2) == 0;
    ref.qid = static_cast<std::uint16_t>(idx / 2);
    return ref;
}

/** BAR0 offset of the SQ tail doorbell for @p qid. */
inline std::uint64_t
sqDoorbellOffset(std::uint16_t qid)
{
    return kRegDoorbellBase + (2ull * qid) * kDoorbellStride;
}

/** BAR0 offset of the CQ head doorbell for @p qid. */
inline std::uint64_t
cqDoorbellOffset(std::uint16_t qid)
{
    return kRegDoorbellBase + (2ull * qid + 1) * kDoorbellStride;
}

/**
 * Submission queue entry; 64-byte NVMe wire format.
 *
 * cdw10/cdw11 carry the starting LBA for NVM read/write; cdw12 bits
 * [15:0] carry the 0-based number of logical blocks. The BMS-Engine
 * rewrites slba (host LBA → physical LBA) and prp1/prp2 (host PRP →
 * global PRP) in place before forwarding to a back-end SSD.
 */
struct Sqe
{
    std::uint8_t opcode = 0;
    std::uint8_t flags = 0;
    std::uint16_t cid = 0;
    std::uint32_t nsid = 0;
    std::uint64_t rsvd2 = 0;
    std::uint64_t mptr = 0;
    std::uint64_t prp1 = 0;
    std::uint64_t prp2 = 0;
    std::uint32_t cdw10 = 0;
    std::uint32_t cdw11 = 0;
    std::uint32_t cdw12 = 0;
    std::uint32_t cdw13 = 0;
    std::uint32_t cdw14 = 0;
    std::uint32_t cdw15 = 0;

    /** Starting LBA of an NVM read/write. */
    std::uint64_t
    slba() const
    {
        return (static_cast<std::uint64_t>(cdw11) << 32) | cdw10;
    }

    void
    setSlba(std::uint64_t lba)
    {
        cdw10 = static_cast<std::uint32_t>(lba);
        cdw11 = static_cast<std::uint32_t>(lba >> 32);
    }

    /** Number of logical blocks (1-based). */
    std::uint32_t nlb() const { return (cdw12 & 0xffff) + 1; }

    void
    setNlb(std::uint32_t blocks)
    {
        cdw12 = (cdw12 & ~0xffffu) | ((blocks - 1) & 0xffff);
    }

    /** Transfer length in bytes for NVM read/write. */
    std::uint64_t
    dataBytes() const
    {
        return static_cast<std::uint64_t>(nlb()) * kBlockSize;
    }
};

static_assert(sizeof(Sqe) == 64, "SQE must be 64 bytes");

/** Completion queue entry; 16-byte NVMe wire format. */
struct Cqe
{
    std::uint32_t dw0 = 0;
    std::uint32_t rsvd = 0;
    std::uint16_t sqHead = 0;
    std::uint16_t sqId = 0;
    std::uint16_t cid = 0;
    std::uint16_t statusPhase = 0; ///< [15:1] status, [0] phase tag

    Status
    status() const
    {
        return static_cast<Status>((statusPhase >> 1) & 0xff);
    }

    bool phase() const { return statusPhase & 0x1; }

    void
    setStatusPhase(Status st, bool phase)
    {
        statusPhase = static_cast<std::uint16_t>(
            (static_cast<std::uint16_t>(st) << 1) | (phase ? 1 : 0));
    }

    bool ok() const { return status() == Status::Success; }
};

static_assert(sizeof(Cqe) == 16, "CQE must be 16 bytes");

/** Copy a POD to/from raw bytes (queues live in simulated memory). */
template <typename T>
inline void
toBytes(const T &v, std::uint8_t *out)
{
    std::memcpy(out, &v, sizeof(T));
}

template <typename T>
inline T
fromBytes(const std::uint8_t *in)
{
    T v;
    std::memcpy(&v, in, sizeof(T));
    return v;
}

} // namespace bms::nvme

#endif // BMS_NVME_DEFS_HH
