/**
 * @file
 * Experiment runners and table printers shared by bench binaries.
 */

#ifndef BMS_HARNESS_RUNNER_HH
#define BMS_HARNESS_RUNNER_HH

#include <cstdio>
#include <string>
#include <vector>

#include "host/block.hh"
#include "sim/simulator.hh"
#include "workload/fio.hh"

namespace bms::harness {

/**
 * Parse the flags every bench/example binary shares:
 *   --paranoid   enable structure-wide invariant sweeps on hot paths
 *                (sim::Check::paranoid(); also BMS_PARANOID=1)
 *   --log=LEVEL  raise the log level (warn|info|debug|trace)
 * Unknown arguments are left alone so binaries can add their own.
 */
void applyCommonFlags(int argc, char **argv);

/** Run one fio spec to completion on @p dev; returns its results. */
workload::FioResult runFio(sim::Simulator &sim, host::BlockDeviceIf &dev,
                           const workload::FioJobSpec &spec);

/**
 * Run the same spec concurrently on many devices (multi-VM
 * experiments); returns per-device results in input order.
 */
std::vector<workload::FioResult>
runFioMany(sim::Simulator &sim,
           const std::vector<host::BlockDeviceIf *> &devs,
           const workload::FioJobSpec &spec);

/**
 * Fixed-width text table matching the paper's rows/columns. Setting
 * the environment variable `BMS_TABLE_CSV=1` switches every bench's
 * output to machine-readable CSV for plotting pipelines.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Pretty-print (or CSV when BMS_TABLE_CSV is set). */
    void print(const std::string &title) const;

    void printCsv(const std::string &title) const;

    static std::string fmt(double v, int decimals = 1);
    static std::string fmtInt(std::uint64_t v);

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace bms::harness

#endif // BMS_HARNESS_RUNNER_HH
