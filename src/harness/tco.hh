/**
 * @file
 * TCO model of §VI-C: a typical local-storage server sells fixed
 * instance shapes; polling-based virtualization (SPDK vhost) reserves
 * host cores, leaving unsellable resource fragments, while BM-Store
 * frees those cores at a small hardware cost.
 *
 * Paper numbers: server = 128 HT / 1024 GB / 16 SSDs; instance =
 * 8 HT / 64 GB / 1 SSD; SPDK dedicates 16 cores (fragments of
 * 128 GB + 2 SSDs → two fewer instances); 4 BM-Store cards add ~3%
 * server cost; result: 14.3% more sellable instances, ≥11.3% lower
 * TCO per instance.
 */

#ifndef BMS_HARNESS_TCO_HH
#define BMS_HARNESS_TCO_HH

#include <algorithm>
#include <cstdint>

namespace bms::harness {

/** Server and instance shapes + cost inputs. */
struct TcoInputs
{
    int serverHt = 128;
    int serverMemGb = 1024;
    int serverSsds = 16;

    int instanceHt = 8;
    int instanceMemGb = 64;
    int instanceSsds = 1;

    /** Host threads reserved by the vhost polling layer. */
    int vhostDedicatedHt = 16;
    /** Server cost increase from BM-Store hardware (4 cards). */
    double bmStoreHwCostFactor = 0.03;
    /** Baseline server cost (normalized). */
    double serverCost = 1.0;
    /**
     * Lifetime operating cost (power + IDC) as a fraction of server
     * capex; TCO = capex * (1 + opexFactor). Roughly 1.0 over a
     * 4-5 year depreciation window.
     */
    double opexFactor = 1.0;
    /** Extra power draw of the BM-Store cards relative to the server. */
    double bmStorePowerFactor = 0.01;
};

/** Outcome for one deployment option. */
struct TcoResult
{
    int sellableInstances = 0;
    double serverCost = 0.0;
    /** Cost per sellable instance (lower is better). */
    double costPerInstance = 0.0;
};

/** Instances sellable given HT/mem/SSD budgets. */
inline int
sellableInstances(const TcoInputs &in, int usable_ht)
{
    int by_ht = usable_ht / in.instanceHt;
    int by_mem = in.serverMemGb / in.instanceMemGb;
    int by_ssd = in.serverSsds / in.instanceSsds;
    return std::min({by_ht, by_mem, by_ssd});
}

/** SPDK vhost deployment: dedicated polling cores shrink the budget. */
inline TcoResult
tcoSpdk(const TcoInputs &in)
{
    TcoResult r;
    r.sellableInstances =
        sellableInstances(in, in.serverHt - in.vhostDedicatedHt);
    r.serverCost = in.serverCost * (1.0 + in.opexFactor);
    r.costPerInstance = r.serverCost / r.sellableInstances;
    return r;
}

/** BM-Store deployment: all host threads sellable, small HW uplift. */
inline TcoResult
tcoBmStore(const TcoInputs &in)
{
    TcoResult r;
    r.sellableInstances = sellableInstances(in, in.serverHt);
    r.serverCost = in.serverCost *
                   (1.0 + in.bmStoreHwCostFactor +
                    in.opexFactor * (1.0 + in.bmStorePowerFactor));
    r.costPerInstance = r.serverCost / r.sellableInstances;
    return r;
}

/** Relative gains of BM-Store over the SPDK deployment. */
struct TcoComparison
{
    double moreInstancesPct = 0.0;
    double tcoReductionPct = 0.0;
};

inline TcoComparison
compareTco(const TcoInputs &in)
{
    TcoResult spdk = tcoSpdk(in);
    TcoResult bms = tcoBmStore(in);
    TcoComparison c;
    c.moreInstancesPct = 100.0 *
                         (bms.sellableInstances - spdk.sellableInstances) /
                         static_cast<double>(spdk.sellableInstances);
    c.tcoReductionPct = 100.0 *
                        (spdk.costPerInstance - bms.costPerInstance) /
                        spdk.costPerInstance;
    return c;
}

} // namespace bms::harness

#endif // BMS_HARNESS_TCO_HH
