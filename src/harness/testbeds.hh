/**
 * @file
 * Testbed builders — wire complete systems matching the paper's
 * experimental setups so benches and examples stay short:
 *
 *   - NativeTestbed: host + N directly-attached P4510s (baseline)
 *   - BmStoreTestbed: host + BM-Store card + N back-end P4510s +
 *     BMS-Controller + out-of-band console
 *   - VM helpers: VFIO / BM-Store VF / SPDK vhost tenants
 */

#ifndef BMS_HARNESS_TESTBEDS_HH
#define BMS_HARNESS_TESTBEDS_HH

#include <memory>
#include <string>
#include <vector>

#include "baselines/spdk_vhost.hh"
#include "core/ctrl/bms_controller.hh"
#include "core/engine/bms_engine.hh"
#include "core/mgmt/mgmt_console.hh"
#include "host/host_system.hh"
#include "host/nvme_driver.hh"
#include "remote/network.hh"
#include "remote/remote_device.hh"
#include "remote/storage_server.hh"
#include "ssd/ssd_device.hh"
#include "virt/vm.hh"
#include "virt/virtio_blk.hh"

namespace bms::harness {

/** Common knobs for every testbed. */
struct TestbedConfig
{
    int ssdCount = 1;
    std::uint64_t seed = 1;
    /**
     * Join an existing simulation instead of owning a private one
     * (fleet runs: many cards, one deterministic event queue). The
     * pointed-to Simulator must outlive the testbed; `seed` is
     * ignored when set.
     */
    sim::Simulator *sharedSim = nullptr;
    /**
     * Prefix for every component name ("card3." gives "card3.bms",
     * "card3.bssd0", ...). Required to keep names unique when
     * several testbeds share one simulation; empty for the classic
     * single-card world so all existing names (and the lane-audit
     * census baseline) are unchanged.
     */
    std::string namePrefix;
    host::HostConfig host;
    ssd::SsdDevice::Config ssd;
    /**
     * Per-slot SSD config overrides (index = back-end slot; slots
     * beyond the vector fall back to `ssd`). Fault-injection
     * testbeds use this to give each slot its own error/latency
     * knobs — e.g. one degraded disk among healthy ones.
     */
    std::vector<ssd::SsdDevice::Config> ssdOverrides;
    core::EngineConfig engine;
    /** BMS-Controller config (BmStoreTestbed only). */
    core::BmsControllerConfig ctrl;
    /**
     * Chunk size override in bytes (BmStoreTestbed only; 0 keeps the
     * geometry in `ctrl`). Tests and the fuzzer shrink chunks so a
     * migration's copy phase fits the simulated horizon.
     */
    std::uint64_t chunkBytes = 0;
    /** Driver shape used by attach helpers. */
    std::uint16_t ioQueues = 4;
    std::uint16_t queueDepth = 1024;
    /** Per-queue QPRIO cycle for tenant drivers (empty = medium). */
    std::vector<std::uint8_t> sqPriorities;
    /**
     * NativeTestbed: bind a host kernel driver to each disk. Set
     * false for VFIO experiments — passthrough requires the device
     * to be unbound from the host driver, exactly as on real
     * systems.
     */
    bool attachHostDrivers = true;

    /** @name Remote storage tier (BmStoreTestbed only). */
    /// @{
    /** Storage nodes behind the card; each gets its own link. */
    int remoteNodes = 0;
    /** Volumes exported per node — each takes one back-end slot. */
    int volumesPerNode = 1;
    std::uint64_t remoteVolumeBytes = sim::mib(64);
    remote::StorageServer::Config remoteServer;
    remote::NetworkProfile network;
    remote::RemoteClientConfig remoteClient;
    /// @}

    /**
     * Per-object event lanes everywhere (engine, SSDs, drivers,
     * storage nodes). False runs the world on the flat event queue;
     * the scheduling-equivalence tests compare the two.
     */
    bool perLaneEvents = true;

    /** Effective SSD config for back-end slot @p slot. */
    const ssd::SsdDevice::Config &
    ssdConfig(int slot) const
    {
        auto i = static_cast<std::size_t>(slot);
        return i < ssdOverrides.size() ? ssdOverrides[i] : ssd;
    }
};

/** Base: owns the simulated world and the host. */
class TestbedBase
{
  public:
    explicit TestbedBase(const TestbedConfig &cfg);
    virtual ~TestbedBase() = default;

    sim::Simulator &sim() { return *_sim; }
    host::HostSystem &host() { return *_host; }
    const TestbedConfig &config() const { return _cfg; }

    /**
     * Run the simulation until @p pred is true, in @p step slices;
     * asserts if @p timeout elapses first (bring-up watchdog).
     */
    void runUntilTrue(const std::function<bool()> &pred,
                      sim::Tick timeout = sim::seconds(2),
                      sim::Tick step = sim::milliseconds(1));

  protected:
    /** Component name with the configured prefix applied. */
    std::string nm(const std::string &base) const
    {
        return _cfg.namePrefix + base;
    }

    TestbedConfig _cfg;
    /** Owned only when cfg.sharedSim is null. */
    std::unique_ptr<sim::Simulator> _ownedSim;
    /** The world this testbed lives in (owned or shared). */
    sim::Simulator *_sim = nullptr;
    host::HostSystem *_host = nullptr;
};

/** Host + directly attached SSDs, stock kernel driver per disk. */
class NativeTestbed : public TestbedBase
{
  public:
    explicit NativeTestbed(const TestbedConfig &cfg);

    ssd::SsdDevice &ssd(int i) { return *_ssds.at(i); }
    host::NvmeDriver &driver(int i) { return *_drivers.at(i); }
    int ssdCount() const { return static_cast<int>(_ssds.size()); }

    /**
     * Attach a VFIO guest to disk @p i: a fresh VM whose stock NVMe
     * driver owns the whole device (no sharing — the VFIO tradeoff).
     */
    struct VfioVm
    {
        virt::VirtualMachine *vm = nullptr;
        host::NvmeDriver *driver = nullptr;
    };
    VfioVm addVfioVm(int disk, virt::VmConfig vm_cfg = virt::VmConfig());

  private:
    std::vector<ssd::SsdDevice *> _ssds;
    std::vector<host::NvmeDriver *> _drivers;
    std::vector<pcie::RootPort *> _ports;
    int _vmIndex = 0;
};

/** Host + BM-Store card + back-end SSDs + control plane. */
class BmStoreTestbed : public TestbedBase
{
  public:
    explicit BmStoreTestbed(const TestbedConfig &cfg);

    core::BmsEngine &engine() { return *_engine; }
    core::BmsController &controller() { return *_controller; }
    core::MgmtConsole &console() { return *_console; }
    core::MctpChannel &mctp() { return *_channel; }
    ssd::SsdDevice &ssd(int i) { return *_ssds.at(i); }
    pcie::RootPort &engineSlot() { return *_engineSlot; }
    int ssdCount() const { return static_cast<int>(_ssds.size()); }

    /**
     * Create a namespace of @p bytes bound to function @p fn (via the
     * BMS-Controller namespace manager) and bring up a stock NVMe
     * driver on that function. Bare-metal tenants pass no VM; VM
     * tenants get guest vCPU accounting.
     */
    host::NvmeDriver &attachTenant(
        pcie::FunctionId fn, std::uint64_t bytes,
        core::NamespaceManager::Policy policy =
            core::NamespaceManager::Policy::RoundRobin,
        core::QosLimits qos = core::QosLimits(),
        virt::VirtualMachine *vm = nullptr, int pin_slot = -1,
        bool thin = false);

    /**
     * Bring up a stock NVMe driver on an *existing* namespace of
     * function @p fn (a clone materialised from a snapshot, or a
     * namespace created through the console). With @p ready null the
     * call pumps the simulation until driver init completes (tests);
     * passing a callback defers completion instead, so the fuzzer can
     * attach a clone tenant mid-run from inside an event handler.
     */
    host::NvmeDriver &attachDriver(pcie::FunctionId fn,
                                   std::uint32_t nsid,
                                   std::function<void()> ready = nullptr);

    /** Claim the next unused VF (clone targets, manual VM wiring). */
    pcie::FunctionId claimVf() { return _nextVf++; }

    /** Create a VM and attach it to the next free VF. */
    struct BmsVm
    {
        virt::VirtualMachine *vm = nullptr;
        host::NvmeDriver *driver = nullptr;
        pcie::FunctionId fn = 0;
    };
    BmsVm addVm(std::uint64_t ns_bytes,
                core::QosLimits qos = core::QosLimits(),
                virt::VmConfig vm_cfg = virt::VmConfig());

    /** Provide fresh spare disks for remote hot-plug commands. */
    void enableSpareDisks();

    /** @name Remote tier topology (cfg.remoteNodes > 0). */
    /// @{
    int remoteNodes() const { return static_cast<int>(_servers.size()); }
    remote::StorageServer &server(int node) { return *_servers.at(node); }
    remote::NetworkLink &link(int node) { return *_links.at(node); }
    remote::RemoteNvmeDevice &remoteDevice(int node, int volume)
    {
        return *_remotes.at(static_cast<std::size_t>(
            node * _cfg.volumesPerNode + volume));
    }
    /** Back-end slot occupied by @p volume of @p node. */
    int remoteSlot(int node, int volume) const
    {
        return _cfg.ssdCount + node * _cfg.volumesPerNode + volume;
    }
    /// @}

  private:
    core::BmsEngine *_engine = nullptr;
    core::BmsController *_controller = nullptr;
    core::MgmtConsole *_console = nullptr;
    core::MctpChannel *_channel = nullptr;
    pcie::RootPort *_engineSlot = nullptr;
    std::vector<ssd::SsdDevice *> _ssds;
    std::vector<remote::StorageServer *> _servers;
    std::vector<remote::NetworkLink *> _links;
    std::vector<remote::RemoteNvmeDevice *> _remotes;
    pcie::FunctionId _nextVf;
    int _spareCount = 0;
};

/** Host + SSDs + SPDK vhost target serving virtio-blk VMs. */
class VhostTestbed : public TestbedBase
{
  public:
    VhostTestbed(const TestbedConfig &cfg,
                 baselines::SpdkVhostConfig vhost_cfg);

    baselines::SpdkVhostTarget &target() { return *_target; }
    ssd::SsdDevice &ssd(int i) { return *_ssds.at(i); }
    host::NvmeDriver &backendDriver(int i) { return *_backends.at(i); }
    int ssdCount() const { return static_cast<int>(_ssds.size()); }

    /** A virtio-blk VM carved out of disk @p disk. */
    struct VhostVm
    {
        virt::VirtualMachine *vm = nullptr;
        virt::VirtioBlkDevice *blk = nullptr;
    };
    VhostVm addVm(int disk, std::uint64_t offset, std::uint64_t length,
                  virt::VmConfig vm_cfg = virt::VmConfig());

    /** Start the vhost reactors (after all VMs are added). */
    void start() { _target->start(); }

  private:
    baselines::SpdkVhostTarget *_target = nullptr;
    std::vector<ssd::SsdDevice *> _ssds;
    std::vector<host::NvmeDriver *> _backends;
    std::vector<std::unique_ptr<host::OffsetBlockDevice>> _views;
    int _vmIndex = 0;
};

} // namespace bms::harness

#endif // BMS_HARNESS_TESTBEDS_HH
