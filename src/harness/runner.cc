#include "harness/runner.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "sim/check.hh"
#include "sim/lane_audit.hh"
#include "sim/log.hh"

namespace bms::harness {

namespace {

/** Destination of --lane-audit-out= (atexit handlers cannot capture). */
std::string g_laneAuditPath;
std::string g_laneAuditProg;

void
writeLaneCensus()
{
    if (!sim::LaneAudit::instance().writeJson(g_laneAuditPath,
                                              g_laneAuditProg)) {
        std::fprintf(stderr, "lane-audit: cannot write %s\n",
                     g_laneAuditPath.c_str());
    }
}

} // namespace

void
applyCommonFlags(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--paranoid") == 0) {
            sim::Check::setParanoid(true);
        } else if (std::strncmp(argv[i], "--log=", 6) == 0) {
            const char *lvl = argv[i] + 6;
            if (std::strcmp(lvl, "warn") == 0)
                sim::Log::setLevel(sim::LogLevel::Warn);
            else if (std::strcmp(lvl, "info") == 0)
                sim::Log::setLevel(sim::LogLevel::Info);
            else if (std::strcmp(lvl, "debug") == 0)
                sim::Log::setLevel(sim::LogLevel::Debug);
            else if (std::strcmp(lvl, "trace") == 0)
                sim::Log::setLevel(sim::LogLevel::Trace);
            else
                std::fprintf(stderr, "unknown log level '%s'\n", lvl);
        } else if (std::strncmp(argv[i], "--lane-audit-out=", 17) == 0) {
            // Same-tick lane-conflict census (DESIGN.md §13): record
            // every instrumented access and dump the ranked census on
            // exit. Meaningful in -DBMS_LANE_AUDIT=ON builds; elsewhere
            // the hooks are compiled out and the census is empty.
            g_laneAuditPath = argv[i] + 17;
            g_laneAuditProg = argv[0];
            sim::LaneAudit::instance().enable();
            std::atexit(writeLaneCensus);
        }
    }
}

workload::FioResult
runFio(sim::Simulator &sim, host::BlockDeviceIf &dev,
       const workload::FioJobSpec &spec)
{
    auto *runner =
        sim.make<workload::FioRunner>(sim, "fio." + spec.caseName, dev,
                                      spec);
    runner->start();
    while (!runner->finished()) {
        BMS_ASSERT(!sim.queue().empty(),
                   "fio run stalled: no events left");
        sim.runUntil(sim.now() + sim::milliseconds(10));
    }
    return runner->result();
}

std::vector<workload::FioResult>
runFioMany(sim::Simulator &sim,
           const std::vector<host::BlockDeviceIf *> &devs,
           const workload::FioJobSpec &spec)
{
    std::vector<workload::FioRunner *> runners;
    runners.reserve(devs.size());
    for (std::size_t i = 0; i < devs.size(); ++i) {
        runners.push_back(sim.make<workload::FioRunner>(
            sim, "fio" + std::to_string(i) + "." + spec.caseName,
            *devs[i], spec));
    }
    for (auto *r : runners)
        r->start();
    while (!std::all_of(runners.begin(), runners.end(),
                        [](auto *r) { return r->finished(); })) {
        BMS_ASSERT(!sim.queue().empty(),
                   "fio run stalled: no events left");
        sim.runUntil(sim.now() + sim::milliseconds(10));
    }
    std::vector<workload::FioResult> out;
    out.reserve(runners.size());
    for (auto *r : runners)
        out.push_back(r->result());
    return out;
}

Table::Table(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    BMS_ASSERT_EQ(cells.size(), _headers.size(),
                  "table row does not match header");
    _rows.push_back(std::move(cells));
}

std::string
Table::fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::fmtInt(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
Table::printCsv(const std::string &title) const
{
    std::printf("# %s\n", title.c_str());
    auto row_out = [](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            std::printf("%s%s", c ? "," : "", cells[c].c_str());
        std::printf("\n");
    };
    row_out(_headers);
    for (const auto &row : _rows)
        row_out(row);
}

void
Table::print(const std::string &title) const
{
    if (const char *csv = std::getenv("BMS_TABLE_CSV");
        csv && csv[0] == '1') {
        printCsv(title);
        return;
    }
    std::vector<std::size_t> width(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        width[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::printf("\n== %s ==\n", title.c_str());
    auto line = [&] {
        for (std::size_t c = 0; c < width.size(); ++c) {
            std::printf("+");
            for (std::size_t i = 0; i < width[c] + 2; ++i)
                std::printf("-");
        }
        std::printf("+\n");
    };
    auto row_out = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            std::printf("| %-*s ", static_cast<int>(width[c]),
                        cells[c].c_str());
        std::printf("|\n");
    };
    line();
    row_out(_headers);
    line();
    for (const auto &row : _rows)
        row_out(row);
    line();
}

} // namespace bms::harness
