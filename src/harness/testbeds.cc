#include "harness/testbeds.hh"

#include <utility>

#include "sim/check.hh"

namespace bms::harness {

TestbedBase::TestbedBase(const TestbedConfig &cfg) : _cfg(cfg)
{
    if (cfg.sharedSim) {
        _sim = cfg.sharedSim;
    } else {
        _ownedSim = std::make_unique<sim::Simulator>(cfg.seed);
        _sim = _ownedSim.get();
    }
    _host = _sim->make<host::HostSystem>(*_sim, nm("host"), cfg.host);
}

void
TestbedBase::runUntilTrue(const std::function<bool()> &pred,
                          sim::Tick timeout, sim::Tick step)
{
    sim::Tick deadline = _sim->now() + timeout;
    while (!pred()) {
        BMS_ASSERT_LT(_sim->now(), deadline,
                      "testbed bring-up timed out");
        _sim->runUntil(_sim->now() + step);
    }
}

// ---------------------------------------------------------------------------
// NativeTestbed

NativeTestbed::NativeTestbed(const TestbedConfig &cfg) : TestbedBase(cfg)
{
    int ready = 0;
    for (int i = 0; i < cfg.ssdCount; ++i) {
        auto *ssd = _sim->make<ssd::SsdDevice>(
            *_sim, nm("ssd" + std::to_string(i)), cfg.ssdConfig(i));
        pcie::RootPort &port = _host->addSlot(4);
        port.attach(*ssd);
        _ssds.push_back(ssd);
        _ports.push_back(&port);
        if (!cfg.attachHostDrivers)
            continue;
        host::NvmeDriver::Config dc;
        dc.ioQueues = cfg.ioQueues;
        dc.queueDepth = cfg.queueDepth;
        dc.profile = cfg.host.profile;
        auto *drv = _sim->make<host::NvmeDriver>(
            *_sim, nm("nvme" + std::to_string(i)), _host->memory(),
            _host->irq(), port, _host->cpus(), 0, dc);
        drv->init([&ready] { ++ready; });
        _drivers.push_back(drv);
    }
    if (cfg.attachHostDrivers)
        runUntilTrue([&ready, n = cfg.ssdCount] { return ready == n; });
}

NativeTestbed::VfioVm
NativeTestbed::addVfioVm(int disk, virt::VmConfig vm_cfg)
{
    VfioVm out;
    out.vm = _sim->make<virt::VirtualMachine>(
        *_sim, nm("vm" + std::to_string(_vmIndex++)), vm_cfg);
    host::NvmeDriver::Config dc;
    dc.ioQueues = _cfg.ioQueues;
    dc.queueDepth = _cfg.queueDepth;
    dc.profile = vm_cfg.profile;
    out.driver = _sim->make<host::NvmeDriver>(
        *_sim, out.vm->name() + ".nvme", _host->memory(), _host->irq(),
        *_ports.at(disk), out.vm->vcpus(), 0, dc);
    bool ready = false;
    out.driver->init([&ready] { ready = true; });
    runUntilTrue([&ready] { return ready; });
    return out;
}

// ---------------------------------------------------------------------------
// BmStoreTestbed

BmStoreTestbed::BmStoreTestbed(const TestbedConfig &cfg) : TestbedBase(cfg)
{
    int remote_slots = cfg.remoteNodes * cfg.volumesPerNode;
    core::EngineConfig ecfg = cfg.engine;
    ecfg.ssdSlots = cfg.ssdCount + remote_slots;
    ecfg.perLaneEvents = cfg.perLaneEvents;
    _engine = _sim->make<core::BmsEngine>(*_sim, nm("bms"), ecfg);
    _engineSlot = &_host->addSlot(16);
    _engineSlot->attach(*_engine);
    core::BmsControllerConfig ccfg = cfg.ctrl;
    if (cfg.chunkBytes > 0)
        ccfg.mapGeometry.chunkBlocks = cfg.chunkBytes / nvme::kBlockSize;
    // A remote tier needs the wide map format: slot ids beyond 4 and
    // chunk ids beyond 64 only fit in the 16-bit entries.
    if (remote_slots > 0)
        ccfg.mapGeometry.wide = true;
    _controller =
        _sim->make<core::BmsController>(*_sim, nm("bmsc"), *_engine, ccfg);
    _channel = _sim->make<core::MctpChannel>(*_sim, nm("mctp-vdm"));
    _channel->bind(_controller->endpoint());
    _console = _sim->make<core::MgmtConsole>(*_sim, nm("console"));
    _channel->bind(_console->endpoint());
    _controller->monitor().start();

    // Health probe with full SMART telemetry: the harness can see the
    // concrete device types behind each adaptor.
    _controller->slotHealthProbe = [this](int slot) {
        core::SlotHealth h;
        h.slot = static_cast<std::uint8_t>(slot);
        core::HostAdaptor &ad = _engine->adaptor(slot);
        h.present = ad.hasSsd();
        h.capacityBytes = ad.capacityBytes();
        h.inflight = ad.inflight();
        if (auto *dev = dynamic_cast<ssd::SsdDevice *>(ad.ssd())) {
            h.firmwareRev = dev->firmwareRev();
            h.upgrading = dev->upgrading();
            h.temperatureK = dev->smartTemperatureK();
            h.percentageUsed = dev->smartPercentageUsed();
            h.powerOnHours = dev->smartPowerOnHours();
            h.mediaErrors = dev->mediaErrors();
        }
        return h;
    };

    int ready = 0;
    for (int i = 0; i < cfg.ssdCount; ++i) {
        auto *ssd = _sim->make<ssd::SsdDevice>(
            *_sim, nm("bssd" + std::to_string(i)), cfg.ssdConfig(i));
        // Media/controller events for each SSD get a private lane.
        if (cfg.perLaneEvents)
            ssd->setEventLane(_sim->createLane());
        _ssds.push_back(ssd);
        _controller->attachBackendSsd(i, *ssd, [&ready] { ++ready; });
    }

    // Remote tier: one storage node + link per node, one initiator
    // device per exported volume, each filling a back-end slot past
    // the local SSDs.
    for (int n = 0; n < cfg.remoteNodes; ++n) {
        remote::StorageServer::Config scfg = cfg.remoteServer;
        scfg.perLaneEvents = cfg.perLaneEvents;
        auto *server = _sim->make<remote::StorageServer>(
            *_sim, nm("node" + std::to_string(n)), scfg);
        auto *net = _sim->make<remote::NetworkLink>(
            *_sim, nm("net" + std::to_string(n)), cfg.network);
        _servers.push_back(server);
        _links.push_back(net);
        for (int v = 0; v < cfg.volumesPerNode; ++v) {
            int vol = server->addVolume(
                {v % scfg.ssdCount,
                 static_cast<std::uint64_t>(v / scfg.ssdCount) *
                     cfg.remoteVolumeBytes,
                 cfg.remoteVolumeBytes});
            auto *rdev = _sim->make<remote::RemoteNvmeDevice>(
                *_sim,
                nm("rvol" + std::to_string(n) + "." + std::to_string(v)),
                *net, *server, vol, cfg.remoteClient);
            _remotes.push_back(rdev);
            int slot = remoteSlot(n, v);
            // Mark the slot remote BEFORE attach: registerSsd reads
            // the catalog when the adaptor reports ready.
            _engine->setSlotRemote(slot, n);
            _controller->attachBackendSsd(slot, *rdev,
                                          [&ready] { ++ready; });
        }
    }
    // Node loss via the failNode verb flips the server model.
    _controller->setNodeDownHook(
        [this](int node, bool down) { server(node).setDown(down); });

    runUntilTrue([&ready, n = cfg.ssdCount + remote_slots] {
        return ready == n;
    });
    _nextVf = static_cast<pcie::FunctionId>(ecfg.pfCount);
}

host::NvmeDriver &
BmStoreTestbed::attachTenant(pcie::FunctionId fn, std::uint64_t bytes,
                             core::NamespaceManager::Policy policy,
                             core::QosLimits qos,
                             virt::VirtualMachine *vm, int pin_slot,
                             bool thin)
{
    auto nsid = thin
                    ? _controller->namespaces().createThin(
                          fn, bytes, policy, qos, pin_slot)
                    : _controller->namespaces().createAndAttach(
                          fn, bytes, policy, qos, pin_slot);
    BMS_ASSERT(nsid, "namespace allocation failed");
    host::NvmeDriver::Config dc;
    dc.ioQueues = _cfg.ioQueues;
    dc.queueDepth = _cfg.queueDepth;
    dc.nsid = *nsid;
    dc.sqPriorities = _cfg.sqPriorities;
    dc.profile = vm ? vm->profile() : _cfg.host.profile;
    host::CpuSet &cpus = vm ? vm->vcpus() : _host->cpus();
    auto *drv = _sim->make<host::NvmeDriver>(
        *_sim, nm("tenant.fn" + std::to_string(fn)), _host->memory(),
        _host->irq(), *_engineSlot, cpus, fn, dc);
    // Tenant drivers are per-function hot paths: private event lane.
    if (_cfg.perLaneEvents)
        drv->setEventLane(_sim->createLane());
    bool ready = false;
    drv->init([&ready] { ready = true; });
    runUntilTrue([&ready] { return ready; });
    return *drv;
}

host::NvmeDriver &
BmStoreTestbed::attachDriver(pcie::FunctionId fn, std::uint32_t nsid,
                             std::function<void()> ready)
{
    host::NvmeDriver::Config dc;
    dc.ioQueues = _cfg.ioQueues;
    dc.queueDepth = _cfg.queueDepth;
    dc.nsid = nsid;
    dc.sqPriorities = _cfg.sqPriorities;
    dc.profile = _cfg.host.profile;
    auto *drv = _sim->make<host::NvmeDriver>(
        *_sim,
        nm("tenant.fn" + std::to_string(fn) + ".ns" + std::to_string(nsid)),
        _host->memory(), _host->irq(), *_engineSlot, _host->cpus(), fn,
        dc);
    if (_cfg.perLaneEvents)
        drv->setEventLane(_sim->createLane());
    if (ready) {
        // Mid-run attach: the caller is inside an event handler and
        // cannot pump the simulation — init completes asynchronously.
        drv->init(std::move(ready));
        return *drv;
    }
    bool up = false;
    drv->init([&up] { up = true; });
    runUntilTrue([&up] { return up; });
    return *drv;
}

BmStoreTestbed::BmsVm
BmStoreTestbed::addVm(std::uint64_t ns_bytes, core::QosLimits qos,
                      virt::VmConfig vm_cfg)
{
    BmsVm out;
    out.fn = _nextVf++;
    BMS_ASSERT_LT(out.fn, _engine->config().totalFunctions(),
                  "out of VFs (the card exposes 4 PFs + 124 VFs)");
    out.vm = _sim->make<virt::VirtualMachine>(
        *_sim, nm("vm.fn" + std::to_string(out.fn)), vm_cfg);
    out.driver = &attachTenant(out.fn, ns_bytes,
                               core::NamespaceManager::Policy::RoundRobin,
                               qos, out.vm);
    return out;
}

void
BmStoreTestbed::enableSpareDisks()
{
    _controller->setSpareSsdProvider([this](int slot) {
        auto *spare = _sim->make<ssd::SsdDevice>(
            *_sim,
            nm("spare" + std::to_string(_spareCount++) + ".slot" +
               std::to_string(slot)),
            _cfg.ssd);
        return static_cast<pcie::PcieDeviceIf *>(spare);
    });
}

// ---------------------------------------------------------------------------
// VhostTestbed

VhostTestbed::VhostTestbed(const TestbedConfig &cfg,
                           baselines::SpdkVhostConfig vhost_cfg)
    : TestbedBase(cfg)
{
    _target = _sim->make<baselines::SpdkVhostTarget>(*_sim, nm("vhost"),
                                                     vhost_cfg);
    int ready = 0;
    for (int i = 0; i < cfg.ssdCount; ++i) {
        auto *ssd = _sim->make<ssd::SsdDevice>(
            *_sim, nm("ssd" + std::to_string(i)), cfg.ssdConfig(i));
        pcie::RootPort &port = _host->addSlot(4);
        port.attach(*ssd);
        host::NvmeDriver::Config dc;
        dc.ioQueues = cfg.ioQueues;
        dc.queueDepth = cfg.queueDepth;
        dc.profile = baselines::spdkBackendProfile();
        auto *drv = _sim->make<host::NvmeDriver>(
            *_sim, nm("spdk-nvme" + std::to_string(i)), _host->memory(),
            _host->irq(), port, _host->cpus(), 0, dc);
        drv->init([&ready] { ++ready; });
        _ssds.push_back(ssd);
        _backends.push_back(drv);
    }
    runUntilTrue([&ready, n = cfg.ssdCount] { return ready == n; });
}

VhostTestbed::VhostVm
VhostTestbed::addVm(int disk, std::uint64_t offset, std::uint64_t length,
                    virt::VmConfig vm_cfg)
{
    VhostVm out;
    out.vm = _sim->make<virt::VirtualMachine>(
        *_sim, nm("vm" + std::to_string(_vmIndex++)), vm_cfg);
    auto view = std::make_unique<host::OffsetBlockDevice>(
        *_backends.at(disk), offset, length);
    out.blk = _sim->make<virt::VirtioBlkDevice>(
        *_sim, out.vm->name() + ".vblk", out.vm->vcpus(),
        vm_cfg.profile, length, /*num_queues=*/vm_cfg.vcpus);
    _target->addDevice(*out.blk, *view);
    _views.push_back(std::move(view));
    return out;
}

} // namespace bms::harness
